//! `kspan`: deterministic causal request tracing and critical-path
//! latency attribution.
//!
//! A **request** is one top-level system-call invocation: a span opens
//! when a user thread enters the kernel with no span active, survives
//! restarts, preemptions and blocking (the atomic API's register
//! continuation *is* the request in flight), and closes when the call
//! completes user-visibly — at `finish_syscall` for a running thread or
//! at `complete_blocked` for continuation recognition. Spans are stitched
//! **causally across IPC**: when a message transfer completes, a flow
//! edge links the sender's span to the receiver's, and a parentless
//! single-span request on the receiving side is adopted into the sender's
//! request — so a server's handler work is attributed to the client
//! request that caused it, while reply edges never re-root the client
//! (its request already contains the adopted server span).
//!
//! For every completed request the layer decomposes end-to-end simulated
//! cycles into five exhaustive buckets — on-CPU, runnable-but-waiting-
//! for-CPU, blocked-on-IPC, lock-wait, and other blocking (sleep/join/
//! space-idle) — with the invariant that the buckets **sum exactly** to
//! end-to-end cycles, the same sum-exactness contract `kprof` carries.
//! The decomposition is driven by a per-span segment state machine with
//! telescoping timestamps: each scheduler transition closes the current
//! segment at the acting CPU's clock and opens the next at the same
//! instant, so no cycle is counted twice or dropped.
//!
//! Wait-queue cycles are additionally attributed to the *specific object*
//! waited on (mutex, condvar, port, portset, connection, thread, space,
//! and the big kernel lock as `klock`), surfaced as
//! `kernel.contention.*` kstat counters — the explanatory variable the
//! per-CPU-scheduling roadmap item needs.
//!
//! Everything here is host-side observation: hooks read the simulated
//! clock and mutate only this struct, never a simulated quantity. With
//! `kspan` disabled every hook is a single predictable branch; enabled,
//! runs are bit-identical to the blessed golden trace digests (the
//! zero-perturbation proof obligation, enforced in the bench tests).

use std::collections::BTreeMap;

use fluke_arch::cost::Cycles;

use crate::ids::ThreadId;
use crate::kprof;
use crate::thread::{WaitClass, WaitReason};
use crate::trace::Histogram;

/// Pseudo phase-path code for user-mode cycles inside a request
/// (re-execution of the trapping instruction after a restart). Real
/// kernel paths are packed `kprof` nibble codes and never reach this
/// value.
pub const USER_FRAME: u32 = u32::MAX;

/// Render a per-request frame code as a collapsed-stack name: the
/// `kprof` phase path (`kernel;dispatch;ipc_copy`) or `user` for
/// [`USER_FRAME`].
pub fn frame_name(code: u32) -> String {
    if code == USER_FRAME {
        "user".to_string()
    } else {
        kprof::path_name(code)
    }
}

/// Which segment of its critical path a span is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    /// On a CPU (running user re-execution or being charged kernel work).
    OnCpu,
    /// Runnable: on a ready queue, waiting for a CPU.
    Runnable,
    /// Blocked for the given reason.
    Blocked(WaitReason),
}

/// One live span: a request in flight on one thread.
#[derive(Debug)]
struct Span {
    /// Request id (shared by all spans stitched into one request).
    req: u64,
    /// This span's unique id.
    id: u64,
    /// Parent span id, if this span was adopted into another request.
    parent: Option<u64>,
    /// Request class: the root entrypoint's name (`sys_null`, …).
    class: &'static str,
    /// Simulated time the span opened.
    open_at: Cycles,
    /// Start of the current segment (telescoping timestamp).
    seg_start: Cycles,
    /// The current segment.
    seg: Seg,
    /// Lock-wait cycles accumulated inside the current on-CPU segment
    /// (big-lock waits and the Full-preemption surcharge); carved out of
    /// the segment into the lock bucket when it closes.
    seg_lock: Cycles,
    on_cpu: Cycles,
    runnable_wait: Cycles,
    blocked_ipc: Cycles,
    lock_wait: Cycles,
    blocked_other: Cycles,
    /// Per-request flamegraph: packed `kprof` path → cycles charged while
    /// this span was on CPU ([`USER_FRAME`] for user re-execution).
    frames: BTreeMap<u32, u64>,
}

/// One completed request's critical-path record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id (shared across stitched spans).
    pub req: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id, if this span was adopted into another request.
    pub parent: Option<u64>,
    /// Request class: the root entrypoint's name.
    pub class: &'static str,
    /// The thread that executed the span.
    pub thread: ThreadId,
    /// Simulated open time.
    pub open_at: Cycles,
    /// Simulated close time.
    pub close_at: Cycles,
    /// Cycles on a CPU (kernel charges and user re-execution), lock
    /// waits excluded.
    pub on_cpu: Cycles,
    /// Cycles runnable but waiting for a CPU (including donated waits).
    pub runnable_wait: Cycles,
    /// Cycles blocked on IPC (connections, ports, portsets, pagers).
    pub blocked_ipc: Cycles,
    /// Cycles waiting for locks: mutex/condvar queues, big-lock waits,
    /// and the Full-preemption locking surcharge.
    pub lock_wait: Cycles,
    /// Cycles in other blocking waits (sleep, join, space-idle).
    pub blocked_other: Cycles,
}

impl RequestRecord {
    /// End-to-end simulated cycles, kernel entry to completion.
    pub fn e2e(&self) -> Cycles {
        self.close_at - self.open_at
    }

    /// Sum of all five decomposition buckets. Equals [`Self::e2e`]
    /// exactly — the sum-exactness invariant.
    pub fn decomposed(&self) -> Cycles {
        self.on_cpu + self.runnable_wait + self.blocked_ipc + self.lock_wait + self.blocked_other
    }
}

/// A causal flow edge: an IPC message transfer completed from the
/// sender's span to the receiver's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEdge {
    /// The sending span.
    pub from_span: u64,
    /// The receiving span.
    pub to_span: u64,
    /// The sending thread.
    pub from_thread: ThreadId,
    /// The receiving thread.
    pub to_thread: ThreadId,
    /// Simulated time of the transfer completion.
    pub at: Cycles,
}

/// Wait cycles and wait counts attributed to one contended object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectContention {
    /// Total cycles threads spent waiting on the object.
    pub wait_cycles: Cycles,
    /// Number of completed waits on the object.
    pub waits: u64,
}

/// The kspan layer held by the kernel. All methods are no-ops when
/// disabled (one branch); enabled, they mutate only this struct.
#[derive(Debug, Default)]
pub struct Kspan {
    /// Whether causal tracing is active (set from `Config::kspan`).
    pub enabled: bool,
    next_req: u64,
    next_span: u64,
    /// At most one active span per thread.
    active: BTreeMap<ThreadId, Span>,
    /// Spans ever attached to each request (adoption-rule bookkeeping:
    /// a reply edge must not re-root a request that already contains an
    /// adopted span, even one that has since closed).
    req_sizes: BTreeMap<u64, u64>,
    completed: Vec<RequestRecord>,
    aborted: u64,
    flows: Vec<FlowEdge>,
    contention: BTreeMap<String, ObjectContention>,
    class_hist: BTreeMap<&'static str, Histogram>,
    class_frames: BTreeMap<&'static str, BTreeMap<u32, u64>>,
    overall: Histogram,
}

impl Kspan {
    /// A kspan layer in the given state; allocates nothing until spans
    /// open.
    pub fn new(enabled: bool) -> Kspan {
        Kspan {
            enabled,
            ..Kspan::default()
        }
    }

    /// Open a span for `t` at kernel entry, unless one is already active
    /// (a restart or in-kernel re-entry continues the existing request).
    pub(crate) fn on_enter(&mut self, t: ThreadId, class: &'static str, now: Cycles) {
        if !self.enabled || self.active.contains_key(&t) {
            return;
        }
        let req = self.next_req;
        self.next_req += 1;
        let id = self.next_span;
        self.next_span += 1;
        self.req_sizes.insert(req, 1);
        self.active.insert(
            t,
            Span {
                req,
                id,
                parent: None,
                class,
                open_at: now,
                seg_start: now,
                seg: Seg::OnCpu,
                seg_lock: 0,
                on_cpu: 0,
                runnable_wait: 0,
                blocked_ipc: 0,
                lock_wait: 0,
                blocked_other: 0,
                frames: BTreeMap::new(),
            },
        );
    }

    /// Close the current segment at `now` (clamped so timestamps
    /// telescope even under cross-CPU clock skew) and open `new`.
    fn transition(&mut self, t: ThreadId, new: Seg, now: Cycles) {
        let Some(span) = self.active.get_mut(&t) else {
            return;
        };
        let clamped = now.max(span.seg_start);
        let len = clamped - span.seg_start;
        let mut contended: Option<(WaitReason, Cycles)> = None;
        match span.seg {
            Seg::OnCpu => {
                let lock = span.seg_lock.min(len);
                span.on_cpu += len - lock;
                span.lock_wait += lock;
                span.seg_lock = 0;
            }
            Seg::Runnable => span.runnable_wait += len,
            Seg::Blocked(reason) => {
                match reason.wait_class() {
                    WaitClass::Lock => span.lock_wait += len,
                    WaitClass::Ipc => span.blocked_ipc += len,
                    WaitClass::CpuDonate => span.runnable_wait += len,
                    WaitClass::Other => span.blocked_other += len,
                }
                contended = Some((reason, len));
            }
        }
        span.seg_start = clamped;
        span.seg = new;
        if let Some((reason, len)) = contended {
            if let Some((kind, idx)) = reason.contended_object() {
                let e = self.contention.entry(format!("{kind}_{idx}")).or_default();
                e.wait_cycles += len;
                e.waits += 1;
            }
        }
    }

    /// The thread was dispatched onto a CPU.
    #[inline]
    pub(crate) fn on_run(&mut self, t: ThreadId, now: Cycles) {
        if self.enabled {
            self.transition(t, Seg::OnCpu, now);
        }
    }

    /// The thread became runnable (wake, unblock, or preemption off CPU).
    #[inline]
    pub(crate) fn on_runnable(&mut self, t: ThreadId, now: Cycles) {
        if self.enabled {
            self.transition(t, Seg::Runnable, now);
        }
    }

    /// The thread blocked for `reason` (also re-stamps an in-place
    /// blocked-reason change, closing the old wait into its bucket).
    #[inline]
    pub(crate) fn on_block(&mut self, t: ThreadId, reason: WaitReason, now: Cycles) {
        if self.enabled {
            self.transition(t, Seg::Blocked(reason), now);
        }
    }

    /// The thread's call completed user-visibly: close its span.
    pub(crate) fn on_close(&mut self, t: ThreadId, now: Cycles) {
        if !self.enabled {
            return;
        }
        // Roll the final segment; the replacement kind is irrelevant.
        self.transition(t, Seg::OnCpu, now);
        let Some(span) = self.active.remove(&t) else {
            return;
        };
        let rec = RequestRecord {
            req: span.req,
            span: span.id,
            parent: span.parent,
            class: span.class,
            thread: t,
            open_at: span.open_at,
            close_at: span.seg_start,
            on_cpu: span.on_cpu,
            runnable_wait: span.runnable_wait,
            blocked_ipc: span.blocked_ipc,
            lock_wait: span.lock_wait,
            blocked_other: span.blocked_other,
        };
        debug_assert_eq!(rec.decomposed(), rec.e2e(), "kspan sum-exactness");
        self.overall.record(rec.e2e());
        self.class_hist
            .entry(span.class)
            .or_default()
            .record(rec.e2e());
        let cf = self.class_frames.entry(span.class).or_default();
        for (code, cycles) in span.frames {
            *cf.entry(code).or_insert(0) += cycles;
        }
        self.completed.push(rec);
    }

    /// The thread was halted or had wholesale new state installed
    /// mid-request: terminate its span cleanly without recording it.
    pub(crate) fn on_abort(&mut self, t: ThreadId) {
        if !self.enabled {
            return;
        }
        if self.active.remove(&t).is_some() {
            self.aborted += 1;
        }
    }

    /// Attribute a kernel charge to the current span's flamegraph:
    /// `base` cycles under the current `kprof` path and `lock_extra`
    /// surcharge cycles under the lock path (also carved into the lock
    /// bucket at segment close).
    pub(crate) fn on_charge(&mut self, t: ThreadId, path: u32, base: Cycles, lock_extra: Cycles) {
        if !self.enabled {
            return;
        }
        let Some(span) = self.active.get_mut(&t) else {
            return;
        };
        *span.frames.entry(path).or_insert(0) += base;
        if lock_extra > 0 {
            *span
                .frames
                .entry(crate::kprof::Phase::Lock as u32)
                .or_insert(0) += lock_extra;
            span.seg_lock += lock_extra;
        }
    }

    /// Attribute user-mode cycles (restart re-execution of the trapping
    /// instruction) to the current span's flamegraph.
    pub(crate) fn on_user(&mut self, t: ThreadId, cycles: Cycles) {
        if !self.enabled || cycles == 0 {
            return;
        }
        if let Some(span) = self.active.get_mut(&t) {
            *span.frames.entry(USER_FRAME).or_insert(0) += cycles;
        }
    }

    /// A kernel-lock wait of `cycles` finished on the acting CPU (`t`
    /// its current thread, if any). Attributed to the contended lock's
    /// object class (`"klock"` for the legacy big lock; `"sched"`,
    /// `"space"`, `"handles"`, `"ipc"` for fine-grained classes), and
    /// carved out of the running span's on-CPU segment into the lock
    /// bucket.
    pub(crate) fn on_lock_wait(
        &mut self,
        t: Option<ThreadId>,
        class: &'static str,
        cycles: Cycles,
    ) {
        if !self.enabled {
            return;
        }
        let e = self.contention.entry(class.to_string()).or_default();
        e.wait_cycles += cycles;
        e.waits += 1;
        if let Some(t) = t {
            if let Some(span) = self.active.get_mut(&t) {
                span.seg_lock += cycles;
            }
        }
    }

    /// An IPC message transfer completed from `from`'s span to `to`'s:
    /// record the flow edge, and adopt the receiver into the sender's
    /// request when the receiver's span is a parentless root of a
    /// request no other span has ever joined (so reply edges never
    /// re-root the originating request).
    pub(crate) fn stitch(&mut self, from: ThreadId, to: ThreadId, now: Cycles) {
        if !self.enabled || from == to {
            return;
        }
        let Some((from_id, from_req)) = self.active.get(&from).map(|s| (s.id, s.req)) else {
            return;
        };
        let Some((to_id, to_req, to_parent)) =
            self.active.get(&to).map(|s| (s.id, s.req, s.parent))
        else {
            return;
        };
        self.flows.push(FlowEdge {
            from_span: from_id,
            to_span: to_id,
            from_thread: from,
            to_thread: to,
            at: now,
        });
        let adoptable = to_parent.is_none()
            && to_req != from_req
            && self.req_sizes.get(&to_req).copied().unwrap_or(1) == 1;
        if adoptable {
            let span = self.active.get_mut(&to).expect("looked up above");
            span.req = from_req;
            span.parent = Some(from_id);
            self.req_sizes.remove(&to_req);
            *self.req_sizes.entry(from_req).or_insert(0) += 1;
        }
    }

    // ------------------------------------------------------------------
    // Read-side accessors.
    // ------------------------------------------------------------------

    /// Every completed request's critical-path record, in completion
    /// order.
    pub fn completed(&self) -> &[RequestRecord] {
        &self.completed
    }

    /// Spans still open (must be zero once every thread has halted —
    /// spans never dangle).
    pub fn open_count(&self) -> usize {
        self.active.len()
    }

    /// Spans terminated by thread halt or state installation mid-request.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// All causal flow edges, in transfer-completion order.
    pub fn flows(&self) -> &[FlowEdge] {
        &self.flows
    }

    /// Per-object contention: stable key (`mutex_3`, `conn_0`, `klock`,
    /// …) → wait cycles and counts.
    pub fn contention(&self) -> &BTreeMap<String, ObjectContention> {
        &self.contention
    }

    /// End-to-end latency histogram per request class.
    pub fn class_histograms(&self) -> &BTreeMap<&'static str, Histogram> {
        &self.class_hist
    }

    /// Collapsed flamegraph per request class: packed `kprof` path (or
    /// [`USER_FRAME`]) → cycles, aggregated over completed requests.
    pub fn class_frames(&self) -> &BTreeMap<&'static str, BTreeMap<u32, u64>> {
        &self.class_frames
    }

    /// End-to-end latency histogram across all completed requests.
    pub fn e2e_histogram(&self) -> &Histogram {
        &self.overall
    }

    /// The top `n` contended objects by wait cycles (ties: key order),
    /// as `(key, contention)` pairs.
    pub fn top_contended(&self, n: usize) -> Vec<(&str, ObjectContention)> {
        let mut v: Vec<(&str, ObjectContention)> = self
            .contention
            .iter()
            .map(|(k, c)| (k.as_str(), *c))
            .collect();
        v.sort_by(|a, b| b.1.wait_cycles.cmp(&a.1.wait_cycles).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{intern_class, Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Seg {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            Seg::OnCpu => w.u8(0),
            Seg::Runnable => w.u8(1),
            Seg::Blocked(reason) => {
                w.u8(2);
                reason.snap(w);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Seg::OnCpu,
            1 => Seg::Runnable,
            2 => Seg::Blocked(Snap::restore(r)?),
            t => {
                return Err(SnapError::BadTag {
                    what: "Seg",
                    tag: t as u32,
                })
            }
        })
    }
}

// Request classes are `&'static str` entrypoint names; they round-trip
// through the syscall name table (`intern_class`).
impl Snap for Span {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.req);
        w.u64(self.id);
        self.parent.snap(w);
        w.str(self.class);
        w.u64(self.open_at);
        w.u64(self.seg_start);
        self.seg.snap(w);
        w.u64(self.seg_lock);
        w.u64(self.on_cpu);
        w.u64(self.runnable_wait);
        w.u64(self.blocked_ipc);
        w.u64(self.lock_wait);
        w.u64(self.blocked_other);
        self.frames.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Span {
            req: r.u64()?,
            id: r.u64()?,
            parent: Snap::restore(r)?,
            class: intern_class(&r.str()?)?,
            open_at: r.u64()?,
            seg_start: r.u64()?,
            seg: Snap::restore(r)?,
            seg_lock: r.u64()?,
            on_cpu: r.u64()?,
            runnable_wait: r.u64()?,
            blocked_ipc: r.u64()?,
            lock_wait: r.u64()?,
            blocked_other: r.u64()?,
            frames: Snap::restore(r)?,
        })
    }
}

impl Snap for RequestRecord {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.req);
        w.u64(self.span);
        self.parent.snap(w);
        w.str(self.class);
        self.thread.snap(w);
        w.u64(self.open_at);
        w.u64(self.close_at);
        w.u64(self.on_cpu);
        w.u64(self.runnable_wait);
        w.u64(self.blocked_ipc);
        w.u64(self.lock_wait);
        w.u64(self.blocked_other);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RequestRecord {
            req: r.u64()?,
            span: r.u64()?,
            parent: Snap::restore(r)?,
            class: intern_class(&r.str()?)?,
            thread: Snap::restore(r)?,
            open_at: r.u64()?,
            close_at: r.u64()?,
            on_cpu: r.u64()?,
            runnable_wait: r.u64()?,
            blocked_ipc: r.u64()?,
            lock_wait: r.u64()?,
            blocked_other: r.u64()?,
        })
    }
}

impl Snap for FlowEdge {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.from_span);
        w.u64(self.to_span);
        self.from_thread.snap(w);
        self.to_thread.snap(w);
        w.u64(self.at);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FlowEdge {
            from_span: r.u64()?,
            to_span: r.u64()?,
            from_thread: Snap::restore(r)?,
            to_thread: Snap::restore(r)?,
            at: r.u64()?,
        })
    }
}

impl Snap for ObjectContention {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.wait_cycles);
        w.u64(self.waits);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ObjectContention {
            wait_cycles: r.u64()?,
            waits: r.u64()?,
        })
    }
}

fn snap_class_map<V: Snap>(m: &BTreeMap<&'static str, V>, w: &mut SnapWriter) {
    w.usize(m.len());
    for (k, v) in m {
        w.str(k);
        v.snap(w);
    }
}

fn restore_class_map<V: Snap>(
    r: &mut SnapReader<'_>,
) -> Result<BTreeMap<&'static str, V>, SnapError> {
    let n = r.usize()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let k = intern_class(&r.str()?)?;
        out.insert(k, V::restore(r)?);
    }
    Ok(out)
}

impl Snap for Kspan {
    fn snap(&self, w: &mut SnapWriter) {
        w.bool(self.enabled);
        w.u64(self.next_req);
        w.u64(self.next_span);
        self.active.snap(w);
        self.req_sizes.snap(w);
        self.completed.snap(w);
        w.u64(self.aborted);
        self.flows.snap(w);
        self.contention.snap(w);
        snap_class_map(&self.class_hist, w);
        snap_class_map(&self.class_frames, w);
        self.overall.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Kspan {
            enabled: r.bool()?,
            next_req: r.u64()?,
            next_span: r.u64()?,
            active: Snap::restore(r)?,
            req_sizes: Snap::restore(r)?,
            completed: Snap::restore(r)?,
            aborted: r.u64()?,
            flows: Snap::restore(r)?,
            contention: Snap::restore(r)?,
            class_hist: restore_class_map(r)?,
            class_frames: restore_class_map(r)?,
            overall: Snap::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConnId, ObjId};

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn disabled_layer_does_nothing() {
        let mut k = Kspan::new(false);
        k.on_enter(T0, "sys_null", 10);
        k.on_block(T0, WaitReason::Sleep, 20);
        k.on_close(T0, 30);
        k.on_abort(T0);
        assert_eq!(k.open_count(), 0);
        assert!(k.completed().is_empty());
        assert_eq!(k.aborted(), 0);
    }

    #[test]
    fn decomposition_telescopes_exactly() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "sys_ipc_client_send", 100);
        k.on_block(T0, WaitReason::IpcSend(ConnId(3)), 140); // 40 on-CPU
        k.on_runnable(T0, 200); // 60 blocked on IPC
        k.on_run(T0, 230); // 30 runnable
        k.on_close(T0, 250); // 20 on-CPU
        let recs = k.completed();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.e2e(), 150);
        assert_eq!(r.on_cpu, 60);
        assert_eq!(r.blocked_ipc, 60);
        assert_eq!(r.runnable_wait, 30);
        assert_eq!(r.lock_wait, 0);
        assert_eq!(r.blocked_other, 0);
        assert_eq!(r.decomposed(), r.e2e());
        // The IPC wait was attributed to the connection.
        let c = &k.contention()["conn_3"];
        assert_eq!(c.wait_cycles, 60);
        assert_eq!(c.waits, 1);
    }

    #[test]
    fn lock_waits_carve_out_of_on_cpu_segment() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "sys_null", 0);
        k.on_lock_wait(Some(T0), "klock", 15); // big-lock wait inside the segment
        k.on_charge(T0, 0x3, 50, 10); // FP surcharge adds 10 more
        k.on_close(T0, 100);
        let r = &k.completed()[0];
        assert_eq!(r.e2e(), 100);
        assert_eq!(r.lock_wait, 25);
        assert_eq!(r.on_cpu, 75);
        assert_eq!(r.decomposed(), r.e2e());
        assert_eq!(k.contention()["klock"].wait_cycles, 15);
    }

    #[test]
    fn restart_continues_the_same_span() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "sys_mutex_lock", 0);
        k.on_block(T0, WaitReason::Mutex(ObjId(7)), 10);
        k.on_runnable(T0, 50);
        k.on_run(T0, 60);
        // The restarted call re-enters the kernel: same span.
        k.on_enter(T0, "sys_mutex_lock", 60);
        assert_eq!(k.open_count(), 1);
        k.on_close(T0, 70);
        let r = &k.completed()[0];
        assert_eq!(r.e2e(), 70);
        assert_eq!(r.lock_wait, 40);
        assert_eq!(r.runnable_wait, 10);
        assert_eq!(r.on_cpu, 20);
        assert_eq!(k.contention()["mutex_7"].waits, 1);
    }

    #[test]
    fn blocked_reason_restamp_splits_the_wait() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "sys_ipc_send_wait_receive", 0);
        k.on_block(T0, WaitReason::IpcSend(ConnId(1)), 10);
        // In-place transition to waiting for the reply.
        k.on_block(T0, WaitReason::IpcReceive(ConnId(1)), 30);
        k.on_close(T0, 100);
        let r = &k.completed()[0];
        assert_eq!(r.blocked_ipc, 90);
        assert_eq!(r.decomposed(), r.e2e());
        assert_eq!(k.contention()["conn_1"].waits, 2);
    }

    #[test]
    fn stitch_adopts_single_span_roots_but_not_reply_targets() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "sys_ipc_client_send", 0); // client request R0
        k.on_enter(T1, "sys_ipc_wait_receive", 5); // server request R1
                                                   // Request transfer client → server: server adopted.
        k.stitch(T0, T1, 20);
        assert_eq!(k.flows().len(), 1);
        let server = &k.active[&T1];
        let client = &k.active[&T0];
        assert_eq!(server.req, client.req);
        assert_eq!(server.parent, Some(client.id));
        // Server's call completes; a new server span sends the reply.
        k.on_close(T1, 40);
        k.on_enter(T1, "sys_ipc_send_wait_receive", 45);
        // Reply transfer server → client: the client's request already
        // contains the adopted server span, so it is NOT re-rooted.
        k.stitch(T1, T0, 50);
        assert_eq!(k.flows().len(), 2);
        let client = &k.active[&T0];
        assert!(client.parent.is_none());
        let reply_span = &k.active[&T1];
        assert!(reply_span.parent.is_none());
        // Next client request adopts the server's waiting span.
        k.on_close(T0, 60);
        k.on_enter(T0, "sys_ipc_client_send", 70);
        k.stitch(T0, T1, 80);
        let server = &k.active[&T1];
        let client = &k.active[&T0];
        assert_eq!(server.req, client.req);
    }

    #[test]
    fn abort_terminates_without_recording() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "sys_thread_sleep", 0);
        k.on_block(T0, WaitReason::Sleep, 10);
        k.on_abort(T0);
        assert_eq!(k.open_count(), 0);
        assert_eq!(k.aborted(), 1);
        assert!(k.completed().is_empty());
        // A second abort is a no-op.
        k.on_abort(T0);
        assert_eq!(k.aborted(), 1);
    }

    #[test]
    fn clock_skew_is_clamped_and_still_sums() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "sys_null", 100);
        k.on_block(T0, WaitReason::Sleep, 150);
        // A wake stamped by a CPU whose clock lags the blocker's.
        k.on_runnable(T0, 120);
        k.on_run(T0, 180);
        k.on_close(T0, 200);
        let r = &k.completed()[0];
        assert_eq!(r.decomposed(), r.e2e());
        assert_eq!(r.e2e(), 100);
    }

    #[test]
    fn frames_aggregate_per_class() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "sys_null", 0);
        k.on_charge(T0, 0x1, 30, 0);
        k.on_user(T0, 5);
        k.on_close(T0, 35);
        k.on_enter(T0, "sys_null", 40);
        k.on_charge(T0, 0x1, 20, 0);
        k.on_close(T0, 60);
        let frames = &k.class_frames()["sys_null"];
        assert_eq!(frames[&0x1], 50);
        assert_eq!(frames[&USER_FRAME], 5);
        assert_eq!(k.class_histograms()["sys_null"].count(), 2);
        assert_eq!(k.e2e_histogram().count(), 2);
        assert_eq!(frame_name(USER_FRAME), "user");
        assert_eq!(frame_name(0x1), "kernel;entry");
    }

    #[test]
    fn top_contended_orders_by_wait_cycles() {
        let mut k = Kspan::new(true);
        k.on_enter(T0, "a", 0);
        k.on_block(T0, WaitReason::Mutex(ObjId(1)), 0);
        k.on_runnable(T0, 100);
        k.on_block(T0, WaitReason::Mutex(ObjId(2)), 100);
        k.on_runnable(T0, 130);
        k.on_close(T0, 130);
        let top = k.top_contended(2);
        assert_eq!(top[0].0, "mutex_1");
        assert_eq!(top[0].1.wait_cycles, 100);
        assert_eq!(top[1].0, "mutex_2");
    }
}

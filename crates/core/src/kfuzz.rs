//! `kfuzz` — coverage-guided differential kernel fuzzing over the
//! `SysDesc` grammar.
//!
//! The fuzzer mutates *syscall-sequence programs*: flat lists of
//! [`FuzzOp`]s, each naming an entrypoint plus pool indices for its
//! argument registers. The register template for every op is derived
//! from the entrypoint's [`fluke_api::ArgRegs`] signature, so the
//! grammar covers the whole table by construction and never needs
//! per-call encoders. Two campaign tiers share the machinery:
//!
//! * **Differential** ([`Tier::Differential`]): programs drawn from the
//!   schedule-independent subset of the API (single thread, no sleeping
//!   entrypoints, no clock/stats reads) run under the four comparable
//!   Table 4 configurations; the user-visible [`Outcome`] — result
//!   codes, final registers, memory checksum — must be bit-identical
//!   everywhere (the paper's execution-model equivalence claim).
//! * **Robustness** ([`Tier::Robustness`]): programs over *all*
//!   entrypoints with adversarial arguments run under one configuration
//!   with the flow checker armed; the oracle is "no panic, bounded
//!   termination, no flow-graph escape".
//!
//! **Coverage** is the set of signatures a run lights up — hashes over
//! kstat counter magnitudes, kprof phase paths, ktrace event bigrams,
//! and per-entrypoint result codes, all signals the kernel already
//! emits for free. Programs producing new signatures are minimized
//! ([`minimize`]) and kept in a deterministic corpus
//! ([`corpus_to_text`]). Every divergence, panic, hang, or flowcheck
//! violation becomes a structured [`Finding`].
//!
//! Everything is deterministic from the campaign seed: same seed + same
//! corpus ⇒ bit-identical schedule, coverage map, and final corpus.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::{ObjType, Sys, SYSCALLS, SYSCALL_COUNT};
use fluke_arch::{Assembler, Program, Reg, UserRegs};

use crate::config::Config;
use crate::ids::ThreadId;
use crate::kernel::Kernel;
use crate::trace::{TraceEvent, UserVisible};

// ---------------------------------------------------------------------------
// Process-wide campaign counters (kstat: `kernel.fuzz.*`)
// ---------------------------------------------------------------------------

static PROGRAMS: AtomicU64 = AtomicU64::new(0);
static SIGNATURES: AtomicU64 = AtomicU64::new(0);
static FINDINGS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of fuzz programs executed (`kernel.fuzz.programs`).
pub fn programs_run() -> u64 {
    PROGRAMS.load(Ordering::Relaxed)
}

/// Process-wide high-water mark of distinct coverage signatures reached
/// by any single campaign (`kernel.fuzz.signatures`).
pub fn signatures_seen() -> u64 {
    SIGNATURES.load(Ordering::Relaxed)
}

/// Process-wide count of distinct finding classes recorded
/// (`kernel.fuzz.findings`).
pub fn findings_seen() -> u64 {
    FINDINGS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Env-knob parsing (structured errors, no silent defaults)
// ---------------------------------------------------------------------------

/// A malformed or out-of-range `FLUKE_*` environment knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnobError {
    /// The value is not a decimal unsigned integer.
    Invalid {
        /// The knob's environment-variable name.
        name: &'static str,
        /// The raw value found.
        raw: String,
    },
    /// The value parsed but lies outside the supported range.
    OutOfRange {
        /// The knob's environment-variable name.
        name: &'static str,
        /// The parsed value.
        value: u64,
        /// Smallest accepted value.
        lo: u64,
        /// Largest accepted value.
        hi: u64,
    },
}

impl std::fmt::Display for KnobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KnobError::Invalid { name, raw } => {
                write!(f, "{name}={raw:?}: not a decimal unsigned integer")
            }
            KnobError::OutOfRange {
                name,
                value,
                lo,
                hi,
            } => write!(f, "{name}={value}: outside supported range {lo}..={hi}"),
        }
    }
}

impl std::error::Error for KnobError {}

/// Parse one knob value: `None` (unset) yields `default`; anything else
/// must be a decimal unsigned integer inside `[lo, hi]`. Malformed or
/// out-of-range input is a structured [`KnobError`] — never a silent
/// default, never a panic. Pure (takes the raw string), so tests can
/// exercise it without mutating the process environment.
pub fn parse_knob(
    name: &'static str,
    raw: Option<&str>,
    default: u64,
    lo: u64,
    hi: u64,
) -> Result<u64, KnobError> {
    let Some(raw) = raw else {
        return Ok(default);
    };
    let value = raw.trim().parse::<u64>().map_err(|_| KnobError::Invalid {
        name,
        raw: raw.to_string(),
    })?;
    if value < lo || value > hi {
        return Err(KnobError::OutOfRange {
            name,
            value,
            lo,
            hi,
        });
    }
    Ok(value)
}

/// Read and parse an environment knob via [`parse_knob`].
pub fn env_knob(name: &'static str, default: u64, lo: u64, hi: u64) -> Result<u64, KnobError> {
    let raw = std::env::var(name).ok();
    parse_knob(name, raw.as_deref(), default, lo, hi)
}

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64, same construction as the diff_fuzz suite)
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving synthesis and mutation.
#[derive(Debug, Clone)]
pub struct Rng(pub u64);

impl Rng {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next_u64() as u32) % (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Grammar: programs, argument pools, assembly
// ---------------------------------------------------------------------------

/// Base of the fuzz process's main private memory window.
pub const FUZZ_MEM_BASE: u32 = 0x0010_0000;
/// Length of the main window.
pub const FUZZ_MEM_LEN: u32 = 0x0001_0000;
/// Base of the one-page window at the very top of the address space
/// (lets the grammar place objects and buffers against `u32::MAX`).
pub const FUZZ_TOP_BASE: u32 = 0xffff_f000;

/// Handle-register pool: live object slots, the null handle, unmapped
/// and misaligned addresses, and slots against the top of memory.
pub const HANDLE_POOL: [u32; 12] = [
    FUZZ_MEM_BASE,
    FUZZ_MEM_BASE + 0x20,
    FUZZ_MEM_BASE + 0x40,
    FUZZ_MEM_BASE + 0x60,
    FUZZ_MEM_BASE + 0x80,
    FUZZ_MEM_BASE + 0xa0,
    FUZZ_TOP_BASE,
    FUZZ_TOP_BASE + 0xfe0,
    0,
    3,
    FUZZ_MEM_BASE - 0x1000,
    0xdead_0000,
];

/// Count-register pool. Bounded at 64K: `region_populate` materializes
/// backing frames for the populated range, so the pool cap is the host
/// memory cap; the arithmetic edge cases come from placing *bases* near
/// `u32::MAX` (the [`VAL_POOL`]), not from astronomic lengths.
pub const COUNT_POOL: [u32; 8] = [0, 1, 3, 4, 32, 0x400, 0x1000, 0x1_0000];

/// Value-register pool: move targets / secondary handles (live slots,
/// top-of-memory slots) plus boundary scalars.
pub const VAL_POOL: [u32; 12] = [
    0,
    1,
    4,
    FUZZ_MEM_BASE,
    FUZZ_MEM_BASE + 0x20,
    FUZZ_MEM_BASE + 0x60,
    FUZZ_MEM_BASE + 0x2000,
    FUZZ_TOP_BASE,
    FUZZ_TOP_BASE + 0xfe0,
    0x8000_0000,
    0xffff_fff0,
    0xffff_ffff,
];

/// Buffer pool shared by the send/receive buffer registers: valid
/// buffers in both windows, a buffer ending flush against the top of
/// memory, the null page, an unmapped page, and the first two object
/// slots (several entrypoints read *tokens* from buffer registers —
/// `region_create`'s keeper, `mapping_create`'s region — so the pool
/// must be able to name live objects).
pub const BUF_POOL: [u32; 8] = [
    FUZZ_MEM_BASE + 0x2000,
    FUZZ_MEM_BASE + 0x3000,
    FUZZ_TOP_BASE + 0x800,
    FUZZ_TOP_BASE + 0xffc,
    0,
    0xcafe_0000,
    FUZZ_MEM_BASE,
    FUZZ_MEM_BASE + 0x20,
];

/// One fuzzed system call: an entrypoint plus pool indices for each
/// argument register its [`fluke_api::ArgRegs`] template reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FuzzOp {
    /// Entrypoint number (`Sys` discriminant).
    pub sys: u8,
    /// Index into [`HANDLE_POOL`] (`ebx`).
    pub h: u8,
    /// Index into [`COUNT_POOL`] (`ecx`).
    pub c: u8,
    /// Index into [`VAL_POOL`] (`edx`).
    pub v: u8,
    /// Index into [`BUF_POOL`], used for both `esi` and `edi` (offset
    /// by one entry for `edi` so the two can differ).
    pub b: u8,
}

impl FuzzOp {
    /// The entrypoint this op invokes.
    pub fn sysnum(&self) -> Sys {
        Sys::from_u32(self.sys as u32 % SYSCALL_COUNT as u32).expect("in range")
    }
}

/// A fuzzed program: an op sequence run by a single user thread.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct FuzzProgram {
    /// The syscall sequence.
    pub ops: Vec<FuzzOp>,
}

impl FuzzProgram {
    /// A stable content hash (FNV-1a over the op encoding) naming the
    /// program in corpora and schedules.
    pub fn hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for op in &self.ops {
            h = fnv1a(h, &[op.sys, op.h, op.c, op.v, op.b]);
        }
        h
    }
}

/// Campaign tier: which grammar subset and which oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Schedule-independent grammar, four-configuration differential
    /// oracle.
    Differential,
    /// Full-table grammar, single configuration, no-panic /
    /// flow-integrity oracle.
    Robustness,
}

/// The schedule-independent entrypoints the differential tier draws
/// from: every common object operation of the seven passive object
/// types (threads and spaces excluded — installing state can make
/// threads runnable, which is scheduling), the non-sleeping
/// type-specific calls, and the trivial calls whose results are
/// model-independent. `sys_clock`/`sys_stats` read quantities the
/// execution models legitimately disagree on; sleeping calls would park
/// the single thread forever; `sys_cpu_id` is constant on one CPU.
pub fn differential_ops() -> Vec<Sys> {
    let mut out = Vec::new();
    for d in SYSCALLS {
        let passive_family = matches!(
            d.family.obj_type(),
            Some(
                ObjType::Mutex
                    | ObjType::Cond
                    | ObjType::Region
                    | ObjType::Mapping
                    | ObjType::Port
                    | ObjType::Portset
                    | ObjType::Reference
            )
        );
        if d.common_op.is_some() && passive_family {
            out.push(d.sys);
        }
    }
    out.extend([
        Sys::MutexTrylock,
        Sys::MutexUnlock,
        Sys::CondSignal,
        Sys::CondBroadcast,
        Sys::RegionProtect,
        Sys::RegionPopulate,
        Sys::RegionSearch,
        Sys::MappingProtect,
        Sys::RefCompare,
        Sys::ThreadSelf,
        Sys::SysNull,
        Sys::SysVersion,
        Sys::SysCpuId,
        Sys::SysYield,
        Sys::SysTrace,
    ]);
    out
}

/// Synthesize a fresh random program of 1..=12 ops over `ops`.
pub fn synth(rng: &mut Rng, ops: &[Sys]) -> FuzzProgram {
    let n = rng.range(1, 13);
    FuzzProgram {
        ops: (0..n).map(|_| rand_op(rng, ops)).collect(),
    }
}

fn rand_op(rng: &mut Rng, ops: &[Sys]) -> FuzzOp {
    let sys = ops[rng.range(0, ops.len() as u32) as usize];
    FuzzOp {
        sys: sys.num() as u8,
        h: rng.range(0, HANDLE_POOL.len() as u32) as u8,
        c: rng.range(0, COUNT_POOL.len() as u32) as u8,
        v: rng.range(0, VAL_POOL.len() as u32) as u8,
        b: rng.range(0, BUF_POOL.len() as u32) as u8,
    }
}

/// Hard cap on program length (keeps cycle budgets and corpora small).
pub const MAX_OPS: usize = 24;

/// Apply one random structural or argument mutation in place.
pub fn mutate(rng: &mut Rng, prog: &mut FuzzProgram, ops: &[Sys]) {
    let len = prog.ops.len() as u32;
    match rng.range(0, if len > 1 { 7 } else { 3 }) {
        // Insert a fresh op.
        0 => {
            let at = rng.range(0, len + 1) as usize;
            let op = rand_op(rng, ops);
            prog.ops.insert(at, op);
        }
        // Replace an op wholesale.
        1 if len > 0 => {
            let at = rng.range(0, len) as usize;
            prog.ops[at] = rand_op(rng, ops);
        }
        // Tweak one argument index of one op.
        1 | 2 => {
            if len == 0 {
                prog.ops.push(rand_op(rng, ops));
                return;
            }
            let at = rng.range(0, len) as usize;
            let op = &mut prog.ops[at];
            match rng.range(0, 4) {
                0 => op.h = rng.range(0, HANDLE_POOL.len() as u32) as u8,
                1 => op.c = rng.range(0, COUNT_POOL.len() as u32) as u8,
                2 => op.v = rng.range(0, VAL_POOL.len() as u32) as u8,
                _ => op.b = rng.range(0, BUF_POOL.len() as u32) as u8,
            }
        }
        // Delete an op.
        3 => {
            let at = rng.range(0, len) as usize;
            prog.ops.remove(at);
        }
        // Duplicate an op in place.
        4 => {
            let at = rng.range(0, len) as usize;
            let op = prog.ops[at];
            prog.ops.insert(at, op);
        }
        // Swap two ops.
        5 => {
            let a = rng.range(0, len) as usize;
            let b = rng.range(0, len) as usize;
            prog.ops.swap(a, b);
        }
        // Truncate the tail.
        _ => {
            let keep = rng.range(1, len + 1) as usize;
            prog.ops.truncate(keep);
        }
    }
    prog.ops.truncate(MAX_OPS);
}

// ---------------------------------------------------------------------------
// Execution harness
// ---------------------------------------------------------------------------

/// The user-visible outcome of one program under one configuration —
/// the quantity the differential oracle compares across configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Per-thread user-visible trace projection (result codes, marks,
    /// halts).
    pub uv: BTreeMap<ThreadId, Vec<UserVisible>>,
    /// The fuzz thread's final `eax` and argument registers.
    pub regs: [u32; 6],
    /// Whether the thread ran to its halt.
    pub halted: bool,
    /// FNV-64 checksum over both memory windows.
    pub mem: u64,
}

/// The result of executing one program under one configuration.
#[derive(Debug, Clone)]
pub struct Exec {
    /// The differential outcome.
    pub outcome: Outcome,
    /// Coverage signatures lit up by the run (salted by config label).
    pub sigs: BTreeSet<u64>,
    /// Human-readable descriptions of any flowcheck violations.
    pub violations: Vec<String>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a digest of a text blob (stable across hosts; the bench report
/// uses it to fingerprint the committed corpus).
pub fn text_digest(text: &str) -> u64 {
    fnv1a(FNV_OFFSET, text.as_bytes())
}

fn sig(salt: u64, parts: &[&[u8]]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &salt.to_le_bytes());
    for p in parts {
        h = fnv1a(h, p);
        h = fnv1a(h, &[0xff]);
    }
    h
}

/// Assemble a [`FuzzProgram`] into user code: each op loads exactly the
/// registers its entrypoint's [`fluke_api::ArgRegs`] template reads,
/// then traps; the program ends with a halt.
pub fn assemble(prog: &FuzzProgram) -> Program {
    let mut a = Assembler::new("kfuzz");
    for op in &prog.ops {
        let sys = op.sysnum();
        let args = sys.args();
        if args.contains(fluke_api::ArgRegs::HANDLE) {
            a.movi(ARG_HANDLE, HANDLE_POOL[op.h as usize % HANDLE_POOL.len()]);
        }
        if args.contains(fluke_api::ArgRegs::COUNT) {
            a.movi(ARG_COUNT, COUNT_POOL[op.c as usize % COUNT_POOL.len()]);
        }
        if args.contains(fluke_api::ArgRegs::VAL) {
            a.movi(ARG_VAL, VAL_POOL[op.v as usize % VAL_POOL.len()]);
        }
        if args.contains(fluke_api::ArgRegs::SBUF) {
            a.movi(ARG_SBUF, BUF_POOL[op.b as usize % BUF_POOL.len()]);
        }
        if args.contains(fluke_api::ArgRegs::RBUF) {
            a.movi(ARG_RBUF, BUF_POOL[(op.b as usize + 1) % BUF_POOL.len()]);
        }
        a.movi(Reg::Eax, sys.num());
        a.syscall();
    }
    a.halt();
    a.finish()
}

/// Cycle budget per program execution (generous: the longest legal
/// program is two dozen short calls).
pub const RUN_BUDGET: u64 = 200_000_000;

/// Execute `prog` under `cfg` in a fresh kernel and extract the
/// differential outcome plus coverage signatures. Tracing is always on
/// (the outcome needs the user-visible projection), `kprof` supplies
/// phase-path signatures, and the flow checker runs so the fuzzer can
/// hunt for graph escapes.
pub fn run_program(cfg: Config, prog: &FuzzProgram) -> Exec {
    let label = cfg.label;
    let mut k = Kernel::new(cfg.with_tracing(1 << 16).with_kprof().with_flowcheck());
    let space = k.create_space();
    k.grant_pages(space, FUZZ_MEM_BASE, FUZZ_MEM_LEN, true);
    k.grant_pages(space, FUZZ_TOP_BASE, 0x1000, true);
    let pid = k.register_program(assemble(prog));
    let t = k.spawn_thread(space, pid, UserRegs::new(), 8);
    let deadline = k.now() + RUN_BUDGET;
    let _ = k.run(Some(deadline));
    let halted = k.thread_halted(t);

    let mut mem = FNV_OFFSET;
    mem = fnv1a(mem, &k.read_mem(space, FUZZ_MEM_BASE, FUZZ_MEM_LEN));
    mem = fnv1a(mem, &k.read_mem(space, FUZZ_TOP_BASE, 0x1000));
    let regs = {
        let r = k.thread_regs(t);
        [
            r.get(Reg::Eax),
            r.get(ARG_HANDLE),
            r.get(ARG_COUNT),
            r.get(ARG_VAL),
            r.get(ARG_SBUF),
            r.get(ARG_RBUF),
        ]
    };
    let outcome = Outcome {
        uv: k.trace.user_visible(),
        regs,
        halted,
        mem,
    };

    let salt = fnv1a(FNV_OFFSET, label.as_bytes());
    let mut sigs = BTreeSet::new();

    // (a) kstat counter magnitudes, log2-bucketed. Process-wide
    // counters (auditor coverage, the fuzzer's own campaign counters)
    // are excluded: they accumulate across kernels and would make
    // signatures depend on unrelated concurrent runs.
    let reg = k.kstat();
    for (name, e) in reg.iter() {
        if e.pattern == "kernel.syscall.<entrypoint>.audit_blocks"
            || name.starts_with("kernel.fuzz.")
        {
            continue;
        }
        if let Some(v) = e.value.scalar() {
            let bucket = 64u64 - v.leading_zeros() as u64; // 0 for v == 0
            sigs.insert(sig(
                salt,
                &[b"kstat", name.as_bytes(), &bucket.to_le_bytes()],
            ));
        }
    }

    // (b) kprof phase paths with nonzero self cycles (shape only).
    for (path, cycles) in k.kprof.flat() {
        if cycles > 0 {
            sigs.insert(sig(salt, &[b"kprof", path.as_bytes()]));
        }
    }

    // (c) per-thread ktrace event-name bigrams, and (d) per-entrypoint
    // result codes from SyscallEnter→SyscallExit pairing — both the
    // single `(sys, code)` point and the *chained* pair with the
    // thread's previous completion. The chains are the depth-sensitive
    // part of the map: random programs rarely string two coherent
    // completions together, while corpus prefixes that set state up
    // make whole families of them reachable.
    let mut last_name: BTreeMap<u32, &'static str> = BTreeMap::new();
    let mut last_sys: BTreeMap<u32, u32> = BTreeMap::new();
    let mut last_exit: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
    for rec in k.trace.merged() {
        let ev = &rec.event;
        if let Some(th) = ev.thread() {
            let name = ev.name();
            if let Some(prev) = last_name.insert(th.0, name) {
                sigs.insert(sig(salt, &[b"bigram", prev.as_bytes(), name.as_bytes()]));
            }
            match *ev {
                TraceEvent::SyscallEnter { thread, sys, .. } => {
                    last_sys.insert(thread.0, sys);
                }
                TraceEvent::SyscallExit { thread, code, .. } => {
                    if let Some(sys) = last_sys.remove(&thread.0) {
                        sigs.insert(sig(
                            salt,
                            &[b"exit", &sys.to_le_bytes(), &code.to_le_bytes()],
                        ));
                        if let Some((ps, pc)) = last_exit.insert(thread.0, (sys, code)) {
                            sigs.insert(sig(
                                salt,
                                &[
                                    b"chain",
                                    &ps.to_le_bytes(),
                                    &pc.to_le_bytes(),
                                    &sys.to_le_bytes(),
                                    &code.to_le_bytes(),
                                ],
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // (e) flow-graph escapes are coverage too — the fuzzer steers
    // toward them, and each one is also reported as a finding.
    let violations: Vec<String> = k
        .flowcheck
        .violations
        .iter()
        .map(|v| format!("{:?} at {:#x} in {}", v.kind, v.vaddr, v.sys.name()))
        .collect();
    for v in &violations {
        sigs.insert(sig(salt, &[b"flow", v.as_bytes()]));
    }

    Exec {
        outcome,
        sigs,
        violations,
    }
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// Why a program is a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The outcome under `config` differed from the first configuration.
    Divergence {
        /// Label of the diverging configuration.
        config: String,
    },
    /// The kernel panicked while executing the program.
    Panic {
        /// Label of the panicking configuration.
        config: String,
        /// The panic payload message.
        msg: String,
    },
    /// The flow checker recorded a violation.
    FlowViolation {
        /// Human-readable violation description.
        desc: String,
    },
    /// A differential-tier program failed to halt in budget (its
    /// grammar contains no sleeping entrypoint, so this is a bug).
    Hang {
        /// Label of the hanging configuration.
        config: String,
    },
}

/// A fuzzer-discovered bug candidate: the classification plus the
/// (minimized, when found by a campaign) reproducer program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// The reproducer.
    pub program: FuzzProgram,
}

impl Finding {
    /// A short stable class key used to deduplicate findings (one per
    /// root cause, not one per mutant).
    pub fn class(&self) -> String {
        match &self.kind {
            FindingKind::Divergence { config } => format!("divergence:{config}"),
            FindingKind::Panic { msg, .. } => format!("panic:{msg}"),
            FindingKind::FlowViolation { desc } => {
                // Keep the kind, drop the address.
                let head = desc.split(" at ").next().unwrap_or(desc);
                format!("flow:{head}")
            }
            FindingKind::Hang { config } => format!("hang:{config}"),
        }
    }
}

/// The four comparable Table 4 configurations (full preemption has no
/// interrupt-model partner; the golden-trace suite covers it).
pub fn differential_configs() -> Vec<Config> {
    vec![
        Config::process_np(),
        Config::interrupt_np(),
        Config::process_pp(),
        Config::interrupt_pp(),
    ]
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one program through its tier's oracle: all four configurations
/// with outcome comparison for [`Tier::Differential`], the process-NP
/// configuration for [`Tier::Robustness`]. Returns the union of
/// coverage signatures and every finding (panics are caught and
/// classified, never propagated).
pub fn judge(tier: Tier, prog: &FuzzProgram) -> (BTreeSet<u64>, Vec<Finding>) {
    let mut sigs = BTreeSet::new();
    let mut findings = Vec::new();
    let configs = match tier {
        Tier::Differential => differential_configs(),
        Tier::Robustness => vec![Config::process_np()],
    };
    let mut base: Option<Outcome> = None;
    for cfg in configs {
        let label = cfg.label;
        match catch_unwind(AssertUnwindSafe(|| run_program(cfg, prog))) {
            Err(e) => {
                findings.push(Finding {
                    kind: FindingKind::Panic {
                        config: label.to_string(),
                        msg: panic_msg(e),
                    },
                    program: prog.clone(),
                });
                // A configuration that panics has no outcome to compare.
                continue;
            }
            Ok(exec) => {
                sigs.extend(exec.sigs.iter().copied());
                for desc in &exec.violations {
                    findings.push(Finding {
                        kind: FindingKind::FlowViolation { desc: desc.clone() },
                        program: prog.clone(),
                    });
                }
                if tier == Tier::Differential {
                    if !exec.outcome.halted {
                        findings.push(Finding {
                            kind: FindingKind::Hang {
                                config: label.to_string(),
                            },
                            program: prog.clone(),
                        });
                    }
                    match &base {
                        None => base = Some(exec.outcome),
                        Some(want) => {
                            if *want != exec.outcome {
                                findings.push(Finding {
                                    kind: FindingKind::Divergence {
                                        config: label.to_string(),
                                    },
                                    program: prog.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    (sigs, findings)
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

/// Greedy delta-minimization: repeatedly try dropping each op (from the
/// tail) while `keep` still accepts the program; stop at a fixpoint.
/// `keep` is re-evaluated on every candidate, so the predicate defines
/// exactly what is preserved (a finding class, a coverage signature).
pub fn minimize(prog: &FuzzProgram, mut keep: impl FnMut(&FuzzProgram) -> bool) -> FuzzProgram {
    let mut cur = prog.clone();
    loop {
        let mut shrunk = false;
        let mut i = cur.ops.len();
        while i > 0 {
            i -= 1;
            if cur.ops.len() <= 1 {
                break;
            }
            let mut cand = cur.clone();
            cand.ops.remove(i);
            if keep(&cand) {
                cur = cand;
                shrunk = true;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus serialization (deterministic text format)
// ---------------------------------------------------------------------------

/// A malformed corpus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusError(pub String);

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corpus: {}", self.0)
    }
}

impl std::error::Error for CorpusError {}

/// Serialize one program as deterministic text: a `kfz1 <n>` header,
/// then one `op <sys> <h> <c> <v> <b>` line per op (entrypoint named in
/// a trailing comment for human readers).
pub fn program_to_text(prog: &FuzzProgram) -> String {
    let mut out = format!("kfz1 {}\n", prog.ops.len());
    for op in &prog.ops {
        out.push_str(&format!(
            "op {} {} {} {} {} # {}\n",
            op.sys,
            op.h,
            op.c,
            op.v,
            op.b,
            op.sysnum().name()
        ));
    }
    out
}

/// Parse [`program_to_text`] output.
pub fn program_from_text(text: &str) -> Result<FuzzProgram, CorpusError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| CorpusError("empty".into()))?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("kfz1") {
        return Err(CorpusError(format!("bad header {header:?}")));
    }
    let n: usize = hp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CorpusError(format!("bad count in {header:?}")))?;
    let mut ops = Vec::with_capacity(n);
    for line in lines {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut p = line.split_whitespace();
        if p.next() != Some("op") {
            return Err(CorpusError(format!("bad line {line:?}")));
        }
        let mut field = || -> Result<u8, CorpusError> {
            p.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CorpusError(format!("bad field in {line:?}")))
        };
        ops.push(FuzzOp {
            sys: field()?,
            h: field()?,
            c: field()?,
            v: field()?,
            b: field()?,
        });
    }
    if ops.len() != n {
        return Err(CorpusError(format!(
            "expected {n} ops, found {}",
            ops.len()
        )));
    }
    Ok(FuzzProgram { ops })
}

/// Serialize a whole corpus as one deterministic text blob (programs in
/// corpus order, separated by blank lines).
pub fn corpus_to_text(corpus: &[FuzzProgram]) -> String {
    corpus
        .iter()
        .map(program_to_text)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parse [`corpus_to_text`] output: a sequence of programs, each opened
/// by its own `kfz1` header.
pub fn corpus_from_text(text: &str) -> Result<Vec<FuzzProgram>, CorpusError> {
    let mut chunks: Vec<String> = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with("kfz1") {
            chunks.push(String::new());
        }
        let Some(cur) = chunks.last_mut() else {
            return Err(CorpusError(format!("op line before any header: {t:?}")));
        };
        cur.push_str(line);
        cur.push('\n');
    }
    chunks.iter().map(|c| program_from_text(c)).collect()
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// The result of one fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// All distinct coverage signatures reached.
    pub sigs: BTreeSet<u64>,
    /// The corpus of minimized signature-earning programs (guided mode;
    /// seeds plus additions — empty in baseline mode).
    pub corpus: Vec<FuzzProgram>,
    /// Coverage-growth curve: `(programs_executed, signatures)` after
    /// each case.
    pub curve: Vec<(u64, u64)>,
    /// Deduplicated findings, each with a minimized reproducer.
    pub findings: Vec<Finding>,
    /// Content hash of every program executed, in order (the mutation
    /// schedule — pinned by the determinism test).
    pub schedule: Vec<u64>,
}

/// Mixed into every campaign seed so kfuzz streams are decorrelated
/// from other splitmix users of the same seed ("kfuzz_v1").
const KFUZZ_SEED_MIX: u64 = 0x6b66_757a_7a5f_7631;

/// Run a fuzzing campaign of `cases` programs from `seed`.
///
/// * `guided = false` — the baseline: every case is synthesized fresh
///   from the seed stream, no feedback (exactly the discipline of the
///   fixed-seed `diff_fuzz` suite).
/// * `guided = true` — coverage-guided: cases mostly mutate corpus
///   entries (programs that earned new signatures, minimized while
///   preserving at least one of them), occasionally splicing two
///   entries or synthesizing fresh.
///
/// `initial` seeds the corpus (the committed `corpus/` directory in CI;
/// empty to start from scratch). Everything is deterministic from
/// `(seed, cases, guided, tier, initial)`.
pub fn campaign(
    seed: u64,
    cases: u64,
    guided: bool,
    tier: Tier,
    initial: &[FuzzProgram],
) -> Campaign {
    let ops = match tier {
        Tier::Differential => differential_ops(),
        Tier::Robustness => SYSCALLS.iter().map(|d| d.sys).collect(),
    };
    let mut rng = Rng(seed ^ KFUZZ_SEED_MIX);
    let mut out = Campaign::default();
    let mut classes: BTreeSet<String> = BTreeSet::new();

    // Seed corpus entries contribute their coverage up front so the
    // campaign only chases genuinely new signatures.
    if guided {
        for p in initial {
            let (sigs, _) = judge(tier, p);
            out.sigs.extend(sigs);
            out.corpus.push(p.clone());
        }
    }

    for _case in 0..cases {
        let prog = if guided && !out.corpus.is_empty() && rng.range(0, 4) != 0 {
            // Exploit: graft fresh exploration onto a proven prefix.
            // Corpus entries are *minimized* — short programs that cheaply
            // reach a deep state — so a mutant built from one alone covers
            // less ground than a fresh synth. Always extending the prefix
            // with a synthesized tail keeps every guided case at least as
            // broad as a baseline case while adding the deep-state
            // interactions only the corpus can provide.
            // Parents come from the novelty frontier: the most recent
            // corpus entries earned signatures nothing before them
            // reached, so their neighborhoods are the least explored.
            let window = out.corpus.len().min(12) as u32;
            let parent = out.corpus.len() - 1 - rng.range(0, window) as usize;
            let mut p = out.corpus[parent].clone();
            if out.corpus.len() > 1 && rng.range(0, 4) == 0 {
                // Splice: append a tail from another corpus entry.
                let other = &out.corpus[rng.range(0, out.corpus.len() as u32) as usize];
                if !other.ops.is_empty() {
                    let cut = rng.range(0, other.ops.len() as u32) as usize;
                    p.ops.extend(other.ops[cut..].iter().copied());
                }
            }
            p.ops.extend(synth(&mut rng, &ops).ops);
            p.ops.truncate(MAX_OPS);
            if rng.range(0, 2) == 0 {
                mutate(&mut rng, &mut p, &ops);
            }
            p
        } else {
            synth(&mut rng, &ops)
        };
        out.schedule.push(prog.hash());
        PROGRAMS.fetch_add(1, Ordering::Relaxed);

        let (sigs, findings) = judge(tier, &prog);
        let fresh: BTreeSet<u64> = sigs.difference(&out.sigs).copied().collect();
        if !fresh.is_empty() {
            out.sigs.extend(fresh.iter().copied());
            if guided {
                // Keep a minimized form that still earns one of the new
                // signatures.
                let min = minimize(&prog, |cand| {
                    let (s, _) = judge(tier, cand);
                    s.intersection(&fresh).next().is_some()
                });
                out.corpus.push(min);
            }
        }
        for f in findings {
            let class = f.class();
            if classes.insert(class.clone()) {
                FINDINGS.fetch_add(1, Ordering::Relaxed);
                let min_prog = minimize(&f.program, |cand| {
                    let (_, fs) = judge(tier, cand);
                    fs.iter().any(|g| g.class() == class)
                });
                out.findings.push(Finding {
                    kind: f.kind,
                    program: min_prog,
                });
            }
        }
        out.curve
            .push((out.schedule.len() as u64, out.sigs.len() as u64));
    }
    SIGNATURES.fetch_max(out.sigs.len() as u64, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluke_api::SysClass;

    #[test]
    fn knob_parsing_is_structured() {
        assert_eq!(parse_knob("K", None, 64, 1, 4096), Ok(64));
        assert_eq!(parse_knob("K", Some("128"), 64, 1, 4096), Ok(128));
        assert_eq!(parse_knob("K", Some(" 7 "), 64, 1, 4096), Ok(7));
        assert_eq!(
            parse_knob("K", Some("banana"), 64, 1, 4096),
            Err(KnobError::Invalid {
                name: "K",
                raw: "banana".into()
            })
        );
        assert_eq!(
            parse_knob("K", Some(""), 64, 1, 4096),
            Err(KnobError::Invalid {
                name: "K",
                raw: "".into()
            })
        );
        assert_eq!(
            parse_knob("K", Some("0"), 64, 1, 4096),
            Err(KnobError::OutOfRange {
                name: "K",
                value: 0,
                lo: 1,
                hi: 4096
            })
        );
        assert_eq!(
            parse_knob("K", Some("-3"), 64, 1, 4096),
            Err(KnobError::Invalid {
                name: "K",
                raw: "-3".into()
            })
        );
        let msg = parse_knob("FLUKE_KFUZZ_CASES", Some("99999"), 64, 1, 4096)
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains("FLUKE_KFUZZ_CASES") && msg.contains("4096"),
            "{msg}"
        );
    }

    #[test]
    fn corpus_round_trips() {
        let mut rng = Rng(7);
        let ops = differential_ops();
        for _ in 0..16 {
            let p = synth(&mut rng, &ops);
            let text = program_to_text(&p);
            assert_eq!(program_from_text(&text).unwrap(), p);
        }
        assert!(program_from_text("").is_err());
        assert!(program_from_text("kfz9 1\nop 0 0 0 0 0").is_err());
        assert!(program_from_text("kfz1 2\nop 0 0 0 0 0").is_err());
        assert!(program_from_text("kfz1 1\nxx 0 0 0 0 0").is_err());
    }

    #[test]
    fn differential_grammar_is_schedule_independent() {
        let ops = differential_ops();
        assert!(ops.len() >= 50, "{}", ops.len());
        for s in &ops {
            // Nothing in the grammar can sleep: single-threaded programs
            // always halt. (`region_search` is Multi-stage for *restart*
            // purposes — it never waits, it resumes after preemption.)
            assert!(
                !matches!(s.class(), SysClass::Long | SysClass::MultiStage)
                    || *s == Sys::RegionSearch,
                "{} can sleep",
                s.name()
            );
            assert!(
                !matches!(s, Sys::SysClock | Sys::SysStats),
                "model-dependent call in grammar"
            );
        }
    }

    #[test]
    fn minimizer_preserves_predicate_and_shrinks() {
        let prog = FuzzProgram {
            ops: (0..10)
                .map(|i| FuzzOp {
                    sys: Sys::SysNull.num() as u8,
                    h: i,
                    c: 0,
                    v: 0,
                    b: 0,
                })
                .collect(),
        };
        // Keep programs containing the op with h == 7.
        let min = minimize(&prog, |p| p.ops.iter().any(|o| o.h == 7));
        assert_eq!(min.ops.len(), 1);
        assert_eq!(min.ops[0].h, 7);
    }
}

//! `flowcheck` — debug-mode syscall-flow integrity checking.
//!
//! Enforces the [`fluke_api::flow`] graph (derived statically from the
//! `SysDesc` table) against the running kernel, SFIP-style:
//!
//! * **Object lifecycles.** Every *successful* completion of an
//!   object-handle entrypoint updates a host-side shadow map from the
//!   handle's *physical* location (so renames and aliases cannot split
//!   an object's identity) to its lifecycle state. A create over a live
//!   location, a destroy or use of a definitely-absent one, a type
//!   mismatch, or a move onto a live target is recorded as a structured
//!   [`Violation`]. Locations the checker has never witnessed are
//!   *unknown* and never flagged — host-side loaders install objects
//!   without syscalls, so the checker only asserts what it can prove.
//! * **Restart re-entry.** When a call blocks, the dispatched entrypoint
//!   is recorded; when the thread next re-enters the kernel, the
//!   entrypoint in `eax` must lie in [`fluke_api::flow::restart_closure`]
//!   of the recorded one — the only rewrites the atomic API permits on a
//!   blocked thread's continuation.
//!
//! The checker is pure observation: it reads completed registers and
//! translations the kernel already performed, writes only host-side
//! shadow state, and records violations as data (never panics), so a
//! checking kernel is bit-identical to an unchecked one — the same
//! zero-perturbation contract as `krec`/`kfault`.

use std::collections::BTreeMap;

use fluke_api::flow::{flow_op, restart_closure, val_role, FlowOp, ValRole};
use fluke_api::{abi, ErrorCode, ObjType, Sys};

use crate::ids::ThreadId;
use crate::kernel::Kernel;
use crate::phys::FrameId;

/// A physical object location: the frame and in-frame offset a handle's
/// virtual address translates to (object identity per the paper §2).
pub type Loc = (FrameId, u32);

/// Cap on retained [`Violation`] records; the total count keeps
/// incrementing past it ([`Flowcheck::violations_total`]).
pub const MAX_VIOLATIONS: usize = 1024;

/// One recorded flow-integrity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The offending thread.
    pub thread: ThreadId,
    /// The entrypoint whose completion (or re-entry) violated the graph.
    pub sys: Sys,
    /// The virtual address involved (handle, move target, or 0 for
    /// re-entry violations).
    pub vaddr: u32,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// Classification of a flow-integrity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A `*_create` succeeded at a location the shadow map knows to be
    /// live with the given type.
    CreateOverLive(ObjType),
    /// A `*_destroy` succeeded at a definitely-absent location.
    DestroyAbsent,
    /// A use succeeded at a definitely-absent location.
    UseAfterDestroy,
    /// The location is live with a different type than the entrypoint
    /// operates on (and not a Reference, which several paths chase).
    TypeConfusion {
        /// The type the entrypoint operates on.
        expected: ObjType,
        /// The type the shadow map holds at the location.
        found: ObjType,
    },
    /// A `*_move` succeeded from a definitely-absent source.
    MoveSourceAbsent,
    /// A `*_move` succeeded onto a location known live with the given
    /// type.
    MoveTargetLive(ObjType),
    /// A thread that blocked while dispatched as `blocked_as` re-entered
    /// the kernel as an entrypoint outside its restart closure.
    IllegalReentry {
        /// The entrypoint dispatched when the thread blocked.
        blocked_as: Sys,
    },
}

/// Shadow lifecycle state of one physical location: `Some(ty)` = live
/// with that type, `None` = definitely absent (witnessed destroy/move).
/// Locations missing from the map entirely are unknown.
type ShadowState = Option<ObjType>;

/// The flow-integrity checker's host-side state (`Config::with_flowcheck`).
#[derive(Debug, Default, Clone)]
pub struct Flowcheck {
    /// Whether checking is enabled (`cfg.flowcheck`).
    pub on: bool,
    /// Shadow lifecycle map, keyed by physical location.
    shadow: BTreeMap<Loc, ShadowState>,
    /// Per-thread entrypoint dispatched at the last block/preempt point,
    /// keyed by thread index; consulted and cleared at re-entry.
    blocked: BTreeMap<u32, Sys>,
    /// Retained violation records (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<Violation>,
    /// Total violations observed, including past the retention cap.
    pub violations_total: u64,
    /// Total lifecycle/re-entry checks performed.
    pub checks: u64,
}

impl Flowcheck {
    /// A checker in the given enablement state.
    pub fn new(on: bool) -> Flowcheck {
        Flowcheck {
            on,
            ..Flowcheck::default()
        }
    }

    fn record(&mut self, v: Violation) {
        self.violations_total += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// Check-and-update one lifecycle action at a known location.
    fn apply(&mut self, thread: ThreadId, sys: Sys, vaddr: u32, loc: Loc, op: FlowOp) {
        self.checks += 1;
        match op {
            FlowOp::Create(ty) => {
                if let Some(Some(found)) = self.shadow.get(&loc) {
                    self.record(Violation {
                        thread,
                        sys,
                        vaddr,
                        kind: ViolationKind::CreateOverLive(*found),
                    });
                }
                self.shadow.insert(loc, Some(ty));
            }
            FlowOp::Destroy(ty) => {
                match self.shadow.get(&loc) {
                    Some(None) => self.record(Violation {
                        thread,
                        sys,
                        vaddr,
                        kind: ViolationKind::DestroyAbsent,
                    }),
                    Some(Some(found)) if *found != ty => self.record(Violation {
                        thread,
                        sys,
                        vaddr,
                        kind: ViolationKind::TypeConfusion {
                            expected: ty,
                            found: *found,
                        },
                    }),
                    _ => {}
                }
                self.shadow.insert(loc, None);
            }
            FlowOp::Use(ty) => match self.shadow.get(&loc) {
                Some(None) => self.record(Violation {
                    thread,
                    sys,
                    vaddr,
                    kind: ViolationKind::UseAfterDestroy,
                }),
                // Several handle paths transparently chase Reference
                // objects, so a live Reference satisfies any use.
                Some(Some(found)) if *found != ty && *found != ObjType::Reference => {
                    self.record(Violation {
                        thread,
                        sys,
                        vaddr,
                        kind: ViolationKind::TypeConfusion {
                            expected: ty,
                            found: *found,
                        },
                    })
                }
                _ => {}
            },
            FlowOp::Move(_) | FlowOp::Other => unreachable!("handled by caller"),
        }
    }
}

impl Kernel {
    /// Translate `vaddr` in `t`'s space to a physical location, exactly
    /// as handle lookup does (read access; no fault side effects).
    fn flowcheck_loc(&self, t: ThreadId, vaddr: u32) -> Option<Loc> {
        let sid = self.threads.get(t.0)?.space?;
        self.spaces.get(sid.0)?.translate(vaddr, false)
    }

    /// Flowcheck hook at syscall completion (both the running
    /// `finish_syscall` path and the blocked `complete_blocked` path),
    /// called while `eax` still names the completed entrypoint. Clears
    /// the thread's block record and, on success, applies the
    /// entrypoint's lifecycle actions to the shadow map.
    pub(crate) fn flowcheck_exit(&mut self, t: ThreadId, code: ErrorCode) {
        if !self.flowcheck.on {
            return;
        }
        self.flowcheck.blocked.remove(&t.0);
        if code != ErrorCode::Success {
            return;
        }
        let Some(th) = self.threads.get(t.0) else {
            return;
        };
        let Some(sys) = Sys::from_u32(th.regs.get(fluke_arch::Reg::Eax)) else {
            return;
        };
        let hv = th.regs.get(abi::ARG_HANDLE);
        let vv = th.regs.get(abi::ARG_VAL);
        match flow_op(sys) {
            FlowOp::Other => {}
            FlowOp::Move(ty) => {
                // Source: live with this type → absent.
                if let Some(loc) = self.flowcheck_loc(t, hv) {
                    self.flowcheck.checks += 1;
                    match self.flowcheck.shadow.get(&loc) {
                        Some(None) => self.flowcheck.record(Violation {
                            thread: t,
                            sys,
                            vaddr: hv,
                            kind: ViolationKind::MoveSourceAbsent,
                        }),
                        Some(Some(found)) if *found != ty => {
                            let found = *found;
                            self.flowcheck.record(Violation {
                                thread: t,
                                sys,
                                vaddr: hv,
                                kind: ViolationKind::TypeConfusion {
                                    expected: ty,
                                    found,
                                },
                            })
                        }
                        _ => {}
                    }
                    self.flowcheck.shadow.insert(loc, None);
                }
                // Target: must not be known-live → live with this type.
                if let Some(loc) = self.flowcheck_loc(t, vv) {
                    self.flowcheck.checks += 1;
                    if let Some(Some(found)) = self.flowcheck.shadow.get(&loc) {
                        let found = *found;
                        self.flowcheck.record(Violation {
                            thread: t,
                            sys,
                            vaddr: vv,
                            kind: ViolationKind::MoveTargetLive(found),
                        });
                    }
                    self.flowcheck.shadow.insert(loc, Some(ty));
                }
            }
            op => {
                if let Some(loc) = self.flowcheck_loc(t, hv) {
                    self.flowcheck.apply(t, sys, hv, loc, op);
                }
                // A secondary object named by the value register
                // (`cond_wait`'s mutex, `*_reference`'s Reference) is a
                // use of that type.
                if let ValRole::Object(oty) = val_role(sys) {
                    if let Some(loc) = self.flowcheck_loc(t, vv) {
                        self.flowcheck.apply(t, sys, vv, loc, FlowOp::Use(oty));
                    }
                }
            }
        }
    }

    /// Flowcheck hook at an audited block/preempt point: remember the
    /// dispatched entrypoint so the next re-entry can be validated
    /// against its restart closure. Outside a dispatch (a user-mode
    /// fault blocking on its keeper) any stale record is cleared — that
    /// wait is not a syscall continuation.
    pub(crate) fn flowcheck_note_block(&mut self, t: ThreadId, dispatched: Option<Sys>) {
        if !self.flowcheck.on {
            return;
        }
        match dispatched {
            Some(sys) => {
                self.flowcheck.blocked.insert(t.0, sys);
            }
            None => {
                self.flowcheck.blocked.remove(&t.0);
            }
        }
    }

    /// Flowcheck hook at syscall (re-)entry: a restarting thread with a
    /// recorded block must re-enter inside the recorded entrypoint's
    /// restart closure. Fresh entries clear any stale record.
    pub(crate) fn flowcheck_entry(&mut self, t: ThreadId, restarting: bool) {
        if !self.flowcheck.on {
            return;
        }
        if !restarting {
            self.flowcheck.blocked.remove(&t.0);
            return;
        }
        let Some(&orig) = self.flowcheck.blocked.get(&t.0) else {
            return;
        };
        let eax = match self.threads.get(t.0) {
            Some(th) => th.regs.get(fluke_arch::Reg::Eax),
            None => return,
        };
        self.flowcheck.checks += 1;
        match Sys::from_u32(eax) {
            Some(sys) if restart_closure(orig).contains(sys) => {}
            reentered => {
                let sys = reentered.unwrap_or(orig);
                self.flowcheck.record(Violation {
                    thread: t,
                    sys,
                    vaddr: 0,
                    kind: ViolationKind::IllegalReentry { blocked_as: orig },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::kernel::Kernel;
    use fluke_arch::{Reg, UserRegs};

    /// A kernel with one thread whose registers we can stage directly,
    /// so the hooks can be driven with outcomes the real (correct)
    /// kernel would never produce — that is exactly what the checker
    /// exists to catch.
    fn staged() -> (Kernel, ThreadId, u32) {
        let mut k = Kernel::new(Config::process_np().with_flowcheck());
        let space = k.create_space();
        let base = 0x0010_0000;
        k.grant_pages(space, base, 0x1000, true);
        let pid = k.register_program(fluke_arch::Assembler::new("noop").finish());
        let t = k.spawn_thread(space, pid, UserRegs::new(), 8);
        (k, t, base)
    }

    fn stage(k: &mut Kernel, t: ThreadId, sys: Sys, handle: u32) {
        let th = k.threads.get_mut(t.0).unwrap();
        th.regs.set(Reg::Eax, sys.num());
        th.regs.set(abi::ARG_HANDLE, handle);
    }

    #[test]
    fn create_over_live_and_use_after_destroy_are_flagged() {
        let (mut k, t, base) = staged();
        // A successful create marks the location live…
        stage(&mut k, t, Sys::MutexCreate, base);
        k.flowcheck_exit(t, ErrorCode::Success);
        assert!(k.flowcheck.violations.is_empty());
        // …so a second successful create at the same location is a
        // lifecycle violation.
        stage(&mut k, t, Sys::MutexCreate, base);
        k.flowcheck_exit(t, ErrorCode::Success);
        assert_eq!(k.flowcheck.violations.len(), 1);
        assert_eq!(
            k.flowcheck.violations[0].kind,
            ViolationKind::CreateOverLive(ObjType::Mutex)
        );
        // Destroy → definitely absent; a *successful* use afterwards is
        // use-after-destroy.
        stage(&mut k, t, Sys::MutexDestroy, base);
        k.flowcheck_exit(t, ErrorCode::Success);
        stage(&mut k, t, Sys::MutexUnlock, base);
        k.flowcheck_exit(t, ErrorCode::Success);
        assert_eq!(k.flowcheck.violations.len(), 2);
        assert_eq!(
            k.flowcheck.violations[1].kind,
            ViolationKind::UseAfterDestroy
        );
        // Failed completions assert nothing.
        stage(&mut k, t, Sys::MutexUnlock, base);
        k.flowcheck_exit(t, ErrorCode::InvalidHandle);
        assert_eq!(k.flowcheck.violations_total, 2);
    }

    #[test]
    fn type_confusion_is_flagged_but_references_pass() {
        let (mut k, t, base) = staged();
        stage(&mut k, t, Sys::CondCreate, base);
        k.flowcheck_exit(t, ErrorCode::Success);
        // Using a Cond location through a Mutex entrypoint succeeded:
        // type confusion.
        stage(&mut k, t, Sys::MutexUnlock, base);
        k.flowcheck_exit(t, ErrorCode::Success);
        assert_eq!(
            k.flowcheck.violations[0].kind,
            ViolationKind::TypeConfusion {
                expected: ObjType::Mutex,
                found: ObjType::Cond
            }
        );
        // A live Reference satisfies any use (handle paths chase refs).
        stage(&mut k, t, Sys::RefCreate, base + 0x20);
        k.flowcheck_exit(t, ErrorCode::Success);
        stage(&mut k, t, Sys::MutexUnlock, base + 0x20);
        k.flowcheck_exit(t, ErrorCode::Success);
        assert_eq!(k.flowcheck.violations_total, 1);
    }

    #[test]
    fn illegal_reentry_outside_restart_closure_is_flagged() {
        let (mut k, t, _) = staged();
        // Thread blocked while dispatched as cond_wait; its restart
        // closure is {cond_wait, mutex_lock}.
        k.flowcheck_note_block(t, Some(Sys::CondWait));
        // Re-entering as mutex_lock is the legal atomic-API rewrite…
        k.threads
            .get_mut(t.0)
            .unwrap()
            .regs
            .set(Reg::Eax, Sys::MutexLock.num());
        k.flowcheck_entry(t, true);
        assert!(k.flowcheck.violations.is_empty());
        // …but re-entering as sys_null is not.
        k.flowcheck_note_block(t, Some(Sys::CondWait));
        k.threads
            .get_mut(t.0)
            .unwrap()
            .regs
            .set(Reg::Eax, Sys::SysNull.num());
        k.flowcheck_entry(t, true);
        assert_eq!(
            k.flowcheck.violations[0].kind,
            ViolationKind::IllegalReentry {
                blocked_as: Sys::CondWait
            }
        );
        // A fresh (non-restarting) entry clears any stale record.
        k.flowcheck_note_block(t, Some(Sys::CondWait));
        k.flowcheck_entry(t, false);
        k.flowcheck_entry(t, true);
        assert_eq!(k.flowcheck.violations_total, 1);
    }

    #[test]
    fn move_tracks_source_and_target() {
        let (mut k, t, base) = staged();
        stage(&mut k, t, Sys::MutexCreate, base);
        k.flowcheck_exit(t, ErrorCode::Success);
        // Successful move: source becomes absent, target live.
        let th = k.threads.get_mut(t.0).unwrap();
        th.regs.set(Reg::Eax, Sys::MutexMove.num());
        th.regs.set(abi::ARG_HANDLE, base);
        th.regs.set(abi::ARG_VAL, base + 0x40);
        k.flowcheck_exit(t, ErrorCode::Success);
        assert!(k.flowcheck.violations.is_empty());
        // The vacated source can be re-created; the occupied target
        // cannot be moved onto again.
        stage(&mut k, t, Sys::MutexCreate, base);
        k.flowcheck_exit(t, ErrorCode::Success);
        let th = k.threads.get_mut(t.0).unwrap();
        th.regs.set(Reg::Eax, Sys::MutexMove.num());
        th.regs.set(abi::ARG_HANDLE, base);
        th.regs.set(abi::ARG_VAL, base + 0x40);
        k.flowcheck_exit(t, ErrorCode::Success);
        assert_eq!(
            k.flowcheck.violations[0].kind,
            ViolationKind::MoveTargetLive(ObjType::Mutex)
        );
    }
}

//! Address spaces: per-space page tables and the hierarchical memory model.
//!
//! Fluke memory is *hierarchical*: a [Region](fluke_api::ObjType::Region)
//! exports a range of its owner space's address space; a
//! [Mapping](fluke_api::ObjType::Mapping) imports (part of) a region into
//! another space. A page absent from a space's page table may be *derivable*
//! from an entry higher in the hierarchy — a **soft** fault the kernel
//! resolves itself — or may require an RPC to the region's keeper (a
//! user-level memory manager) — a **hard** fault (paper Table 3).

use std::collections::HashMap;

use fluke_api::abi::PAGE_SIZE;

use crate::ids::{ObjId, SpaceId, ThreadId};
use crate::phys::FrameId;

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The physical frame backing this page.
    pub frame: FrameId,
    /// Whether stores are permitted.
    pub writable: bool,
}

/// An address space: a page table plus indexes of the memory objects and
/// threads associated with it.
#[derive(Debug)]
pub struct Space {
    /// This space's id.
    pub id: SpaceId,
    /// The object-table entry representing this space (if created via the
    /// API; the boot space is created by the loader).
    pub obj: Option<ObjId>,
    /// Virtual page number → PTE.
    pub pages: HashMap<u32, Pte>,
    /// Mapping objects whose *destination* is this space.
    pub mappings: Vec<ObjId>,
    /// Region objects owned by (exporting from) this space.
    pub regions: Vec<ObjId>,
    /// Threads running in this space.
    pub threads: Vec<ThreadId>,
    /// Whether this space aliases the kernel's own address space (used to
    /// run process-model legacy code in user mode, paper §5.6).
    pub kernel_alias: bool,
}

impl Space {
    /// Create an empty space.
    pub fn new(id: SpaceId) -> Self {
        Space {
            id,
            obj: None,
            pages: HashMap::new(),
            mappings: Vec::new(),
            regions: Vec::new(),
            threads: Vec::new(),
            kernel_alias: false,
        }
    }

    /// Look up the PTE covering `addr`.
    #[inline]
    pub fn pte(&self, addr: u32) -> Option<Pte> {
        self.pages.get(&(addr / PAGE_SIZE)).copied()
    }

    /// Install a PTE for the page containing `addr`.
    pub fn map_page(&mut self, addr: u32, frame: FrameId, writable: bool) {
        self.pages.insert(addr / PAGE_SIZE, Pte { frame, writable });
    }

    /// Remove the PTE for the page containing `addr`, returning it.
    pub fn unmap_page(&mut self, addr: u32) -> Option<Pte> {
        self.pages.remove(&(addr / PAGE_SIZE))
    }

    /// Translate `addr` to (frame, offset) if mapped with sufficient access.
    #[inline]
    pub fn translate(&self, addr: u32, write: bool) -> Option<(FrameId, u32)> {
        let pte = self.pte(addr)?;
        if write && !pte.writable {
            return None;
        }
        Some((pte.frame, addr % PAGE_SIZE))
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut s = Space::new(SpaceId(0));
        assert_eq!(s.translate(0x5000, false), None);
        s.map_page(0x5abc, 7, true);
        assert_eq!(s.pte(0x5000).unwrap().frame, 7);
        assert_eq!(s.translate(0x5123, false), Some((7, 0x123)));
        assert_eq!(s.translate(0x5123, true), Some((7, 0x123)));
        assert_eq!(s.unmap_page(0x5fff).unwrap().frame, 7);
        assert_eq!(s.translate(0x5123, false), None);
    }

    #[test]
    fn write_protection_enforced() {
        let mut s = Space::new(SpaceId(0));
        s.map_page(0x1000, 3, false);
        assert_eq!(s.translate(0x1800, false), Some((3, 0x800)));
        assert_eq!(s.translate(0x1800, true), None);
    }

    #[test]
    fn pages_are_4k_granular() {
        let mut s = Space::new(SpaceId(0));
        s.map_page(0x2000, 1, true);
        assert!(s.translate(0x2fff, false).is_some());
        assert!(s.translate(0x3000, false).is_none());
        assert_eq!(s.resident_pages(), 1);
    }
}

//! Address spaces: per-space page tables and the hierarchical memory model.
//!
//! Fluke memory is *hierarchical*: a [Region](fluke_api::ObjType::Region)
//! exports a range of its owner space's address space; a
//! [Mapping](fluke_api::ObjType::Mapping) imports (part of) a region into
//! another space. A page absent from a space's page table may be *derivable*
//! from an entry higher in the hierarchy — a **soft** fault the kernel
//! resolves itself — or may require an RPC to the region's keeper (a
//! user-level memory manager) — a **hard** fault (paper Table 3).
//!
//! The page table itself is a `HashMap`; a per-space software [`Tlb`] caches
//! translations in front of it, and a base-sorted interval index over the
//! space's Mapping objects makes fault resolution logarithmic instead of a
//! linear scan. Both are host-side accelerations: every page-table mutation
//! goes through methods of [`Space`] that shoot down the TLB and keep the
//! index coherent, so cached state can never disagree with the authoritative
//! structures.

use std::collections::HashMap;

use fluke_api::abi::PAGE_SIZE;

use crate::ids::{ObjId, SpaceId, ThreadId};
use crate::phys::FrameId;
use crate::tlb::{Tlb, TlbStats};
use crate::waitq::WaitQueue;

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The physical frame backing this page.
    pub frame: FrameId,
    /// Whether stores are permitted.
    pub writable: bool,
}

/// A base-sorted interval index over the Mapping objects imported into a
/// space, answering "which mapping covers this address?" in `O(log n)`.
///
/// `walk_hierarchy` must pick the *first mapping in insertion order* among
/// those covering the faulting address (the object-table scan it replaces
/// iterated the space's mapping list front to back), so each entry carries a
/// monotonically increasing sequence number and lookups minimise over it.
#[derive(Debug, Default)]
struct MapIndex {
    /// `(base, end_exclusive, seq, mapping)` sorted by `(base, seq)`.
    entries: Vec<(u32, u32, u64, ObjId)>,
    /// `prefix_max_end[i]` = max `end_exclusive` over `entries[..=i]`; lets a
    /// backwards scan stop as soon as no earlier interval can reach `addr`.
    prefix_max_end: Vec<u32>,
    next_seq: u64,
}

impl MapIndex {
    fn rebuild_prefix(&mut self) {
        self.prefix_max_end.clear();
        let mut max_end = 0;
        for &(_, end, _, _) in &self.entries {
            max_end = max_end.max(end);
            self.prefix_max_end.push(max_end);
        }
    }

    fn insert(&mut self, oid: ObjId, base: u32, size: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let end = base.saturating_add(size);
        let at = self
            .entries
            .partition_point(|&(b, _, s, _)| (b, s) < (base, seq));
        self.entries.insert(at, (base, end, seq, oid));
        self.rebuild_prefix();
    }

    fn remove(&mut self, oid: ObjId) {
        self.entries.retain(|&(_, _, _, o)| o != oid);
        self.rebuild_prefix();
    }

    /// Change the interval of an existing entry, preserving its sequence
    /// number (and therefore its priority in first-match lookups).
    fn update(&mut self, oid: ObjId, base: u32, size: u32) {
        let Some(pos) = self.entries.iter().position(|&(_, _, _, o)| o == oid) else {
            return;
        };
        let (_, _, seq, _) = self.entries.remove(pos);
        let end = base.saturating_add(size);
        let at = self
            .entries
            .partition_point(|&(b, _, s, _)| (b, s) < (base, seq));
        self.entries.insert(at, (base, end, seq, oid));
        self.rebuild_prefix();
    }

    /// The earliest-inserted mapping whose `[base, end)` contains `addr`.
    fn lookup(&self, addr: u32) -> Option<ObjId> {
        // Last entry with base <= addr; everything after it starts past addr.
        let hi = self.entries.partition_point(|&(b, _, _, _)| b <= addr);
        let mut best: Option<(u64, ObjId)> = None;
        for i in (0..hi).rev() {
            if self.prefix_max_end[i] <= addr {
                break; // no entry at or before i can reach addr
            }
            let (_, end, seq, oid) = self.entries[i];
            if end > addr && best.is_none_or(|(bs, _)| seq < bs) {
                best = Some((seq, oid));
            }
        }
        best.map(|(_, oid)| oid)
    }
}

/// An address space: a page table plus indexes of the memory objects and
/// threads associated with it.
#[derive(Debug)]
pub struct Space {
    /// This space's id.
    pub id: SpaceId,
    /// The object-table entry representing this space (if created via the
    /// API; the boot space is created by the loader).
    pub obj: Option<ObjId>,
    /// Virtual page number → PTE. Private: every mutation must shoot down
    /// the TLB, so all access goes through methods.
    pages: HashMap<u32, Pte>,
    /// Software translation cache in front of `pages`.
    tlb: Tlb,
    /// Mapping objects whose *destination* is this space, in insertion
    /// order. Private so the interval index stays coherent.
    mappings: Vec<ObjId>,
    /// Interval index over `mappings` for logarithmic fault resolution.
    map_index: MapIndex,
    /// Region objects owned by (exporting from) this space.
    pub regions: Vec<ObjId>,
    /// Threads running in this space.
    pub threads: Vec<ThreadId>,
    /// Threads blocked in `space_wait_threads` on this space. Explicit
    /// bookkeeping so the halt path never scans the thread arena.
    pub idle_waiters: WaitQueue<ThreadId>,
    /// Whether this space aliases the kernel's own address space (used to
    /// run process-model legacy code in user mode, paper §5.6).
    pub kernel_alias: bool,
}

impl Space {
    /// Create an empty space.
    pub fn new(id: SpaceId) -> Self {
        Space {
            id,
            obj: None,
            pages: HashMap::new(),
            tlb: Tlb::default(),
            mappings: Vec::new(),
            map_index: MapIndex::default(),
            regions: Vec::new(),
            threads: Vec::new(),
            idle_waiters: WaitQueue::new(),
            kernel_alias: false,
        }
    }

    /// Look up the PTE covering `addr`.
    #[inline]
    pub fn pte(&self, addr: u32) -> Option<Pte> {
        self.pages.get(&(addr / PAGE_SIZE)).copied()
    }

    /// Install a PTE for the page containing `addr`.
    pub fn map_page(&mut self, addr: u32, frame: FrameId, writable: bool) {
        self.pages.insert(addr / PAGE_SIZE, Pte { frame, writable });
        self.tlb.shootdown();
    }

    /// Remove the PTE for the page containing `addr`, returning it.
    pub fn unmap_page(&mut self, addr: u32) -> Option<Pte> {
        let old = self.pages.remove(&(addr / PAGE_SIZE));
        if old.is_some() {
            self.tlb.shootdown();
        }
        old
    }

    /// Install a PTE by virtual page number (bulk grants, population).
    pub fn insert_pte(&mut self, vpn: u32, pte: Pte) {
        self.pages.insert(vpn, pte);
        self.tlb.shootdown();
    }

    /// Remove every PTE in the inclusive vpn range, with one shootdown.
    pub fn unmap_vpn_range(&mut self, first: u32, last: u32) {
        let mut removed = false;
        for vpn in first..=last {
            removed |= self.pages.remove(&vpn).is_some();
        }
        if removed {
            self.tlb.shootdown();
        }
    }

    /// Set the writable bit of an existing PTE; returns false if unmapped.
    pub fn set_vpn_writable(&mut self, vpn: u32, writable: bool) -> bool {
        match self.pages.get_mut(&vpn) {
            Some(pte) => {
                pte.writable = writable;
                self.tlb.shootdown();
                true
            }
            None => false,
        }
    }

    /// Whether a PTE exists for this virtual page number.
    #[inline]
    pub fn has_vpn(&self, vpn: u32) -> bool {
        self.pages.contains_key(&vpn)
    }

    /// Iterate resident (vpn, pte) pairs (read-only; no shootdown).
    pub fn pages_iter(&self) -> impl Iterator<Item = (&u32, &Pte)> {
        self.pages.iter()
    }

    /// Translate `addr` to (frame, offset) if mapped with sufficient access.
    ///
    /// The uncached reference path: consults the page table directly.
    #[inline]
    pub fn translate(&self, addr: u32, write: bool) -> Option<(FrameId, u32)> {
        let pte = self.pte(addr)?;
        if write && !pte.writable {
            return None;
        }
        Some((pte.frame, addr % PAGE_SIZE))
    }

    /// Translate through the software TLB, filling it on miss.
    ///
    /// Identical results to [`Space::translate`] — a generation-valid entry
    /// mirrors the current PTE exactly (including the writable bit), so a
    /// write to a cached read-only page reports the protection fault without
    /// touching the page table.
    #[inline]
    pub fn translate_cached(&mut self, addr: u32, write: bool) -> Option<(FrameId, u32)> {
        let vpn = addr / PAGE_SIZE;
        if let Some((frame, writable)) = self.tlb.lookup(vpn) {
            if write && !writable {
                return None;
            }
            return Some((frame, addr % PAGE_SIZE));
        }
        let pte = self.pages.get(&vpn).copied()?;
        self.tlb.insert(vpn, pte.frame, pte.writable);
        if write && !pte.writable {
            return None;
        }
        Some((pte.frame, addr % PAGE_SIZE))
    }

    /// This space's TLB counters.
    pub fn tlb_stats(&self) -> &TlbStats {
        &self.tlb.stats
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Mapping objects imported into this space, in insertion order.
    pub fn mappings(&self) -> &[ObjId] {
        &self.mappings
    }

    /// Register a Mapping object destined for this space.
    pub fn add_mapping(&mut self, oid: ObjId, base: u32, size: u32) {
        self.mappings.push(oid);
        self.map_index.insert(oid, base, size);
    }

    /// Drop a Mapping object from this space's import list.
    pub fn remove_mapping(&mut self, oid: ObjId) {
        self.mappings.retain(|&m| m != oid);
        self.map_index.remove(oid);
    }

    /// Re-home a Mapping whose base/size changed (state install), keeping
    /// its first-match priority.
    pub fn update_mapping(&mut self, oid: ObjId, base: u32, size: u32) {
        self.map_index.update(oid, base, size);
    }

    /// The first mapping (in insertion order) covering `addr`, if any.
    #[inline]
    pub fn mapping_covering(&self, addr: u32) -> Option<ObjId> {
        self.map_index.lookup(addr)
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Pte {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.frame);
        w.bool(self.writable);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Pte {
            frame: r.u32()?,
            writable: r.bool()?,
        })
    }
}

// The prefix-max vector is derived and rebuilt on restore, not stored.
impl Snap for MapIndex {
    fn snap(&self, w: &mut SnapWriter) {
        self.entries.snap(w);
        w.u64(self.next_seq);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut idx = MapIndex {
            entries: Snap::restore(r)?,
            prefix_max_end: Vec::new(),
            next_seq: r.u64()?,
        };
        idx.rebuild_prefix();
        Ok(idx)
    }
}

impl Snap for Space {
    fn snap(&self, w: &mut SnapWriter) {
        self.id.snap(w);
        self.obj.snap(w);
        self.pages.snap(w);
        self.tlb.snap(w);
        self.mappings.snap(w);
        self.map_index.snap(w);
        self.regions.snap(w);
        self.threads.snap(w);
        self.idle_waiters.snap(w);
        w.bool(self.kernel_alias);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Space {
            id: Snap::restore(r)?,
            obj: Snap::restore(r)?,
            pages: Snap::restore(r)?,
            tlb: Snap::restore(r)?,
            mappings: Snap::restore(r)?,
            map_index: Snap::restore(r)?,
            regions: Snap::restore(r)?,
            threads: Snap::restore(r)?,
            idle_waiters: Snap::restore(r)?,
            kernel_alias: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut s = Space::new(SpaceId(0));
        assert_eq!(s.translate(0x5000, false), None);
        s.map_page(0x5abc, 7, true);
        assert_eq!(s.pte(0x5000).unwrap().frame, 7);
        assert_eq!(s.translate(0x5123, false), Some((7, 0x123)));
        assert_eq!(s.translate(0x5123, true), Some((7, 0x123)));
        assert_eq!(s.unmap_page(0x5fff).unwrap().frame, 7);
        assert_eq!(s.translate(0x5123, false), None);
    }

    #[test]
    fn write_protection_enforced() {
        let mut s = Space::new(SpaceId(0));
        s.map_page(0x1000, 3, false);
        assert_eq!(s.translate(0x1800, false), Some((3, 0x800)));
        assert_eq!(s.translate(0x1800, true), None);
    }

    #[test]
    fn pages_are_4k_granular() {
        let mut s = Space::new(SpaceId(0));
        s.map_page(0x2000, 1, true);
        assert!(s.translate(0x2fff, false).is_some());
        assert!(s.translate(0x3000, false).is_none());
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn cached_translate_agrees_with_uncached() {
        let mut s = Space::new(SpaceId(0));
        s.map_page(0x4000, 2, true);
        s.map_page(0x5000, 3, false);
        for &(addr, write) in &[
            (0x4010u32, false),
            (0x4010, true),
            (0x5010, false),
            (0x5010, true),
            (0x6000, false),
        ] {
            assert_eq!(s.translate(addr, write), s.translate_cached(addr, write));
            // And again, now hitting the cache.
            assert_eq!(s.translate(addr, write), s.translate_cached(addr, write));
        }
        assert!(s.tlb_stats().hits > 0);
    }

    #[test]
    fn unmap_shoots_down_cached_translation() {
        let mut s = Space::new(SpaceId(0));
        s.map_page(0x4000, 2, true);
        assert!(s.translate_cached(0x4000, true).is_some());
        s.unmap_page(0x4000);
        assert_eq!(s.translate_cached(0x4000, false), None);
    }

    #[test]
    fn protection_downgrade_shoots_down() {
        let mut s = Space::new(SpaceId(0));
        s.map_page(0x4000, 2, true);
        assert!(s.translate_cached(0x4123, true).is_some());
        assert!(s.set_vpn_writable(4, false));
        assert_eq!(s.translate_cached(0x4123, true), None);
        assert!(s.translate_cached(0x4123, false).is_some());
    }

    #[test]
    fn mapping_index_first_match_wins() {
        let mut s = Space::new(SpaceId(0));
        let (a, b, c) = (ObjId(1), ObjId(2), ObjId(3));
        s.add_mapping(a, 0x2000, 0x2000); // [0x2000, 0x4000)
        s.add_mapping(b, 0x1000, 0x4000); // [0x1000, 0x5000) — overlaps a
        s.add_mapping(c, 0x8000, 0x1000); // [0x8000, 0x9000)
        assert_eq!(s.mapping_covering(0x2800), Some(a)); // both cover; a first
        assert_eq!(s.mapping_covering(0x1800), Some(b));
        assert_eq!(s.mapping_covering(0x4800), Some(b));
        assert_eq!(s.mapping_covering(0x8000), Some(c));
        assert_eq!(s.mapping_covering(0x9000), None);
        assert_eq!(s.mapping_covering(0x0fff), None);
        s.remove_mapping(b);
        assert_eq!(s.mapping_covering(0x1800), None);
        assert_eq!(s.mapping_covering(0x2800), Some(a));
    }

    #[test]
    fn mapping_index_update_keeps_priority() {
        let mut s = Space::new(SpaceId(0));
        let (a, b) = (ObjId(1), ObjId(2));
        s.add_mapping(a, 0x2000, 0x1000);
        s.add_mapping(b, 0x6000, 0x2000);
        // Move a on top of b's range; a was inserted first, so it wins.
        s.update_mapping(a, 0x6000, 0x1000);
        assert_eq!(s.mapping_covering(0x6800), Some(a));
        assert_eq!(s.mapping_covering(0x7800), Some(b));
        assert_eq!(s.mapping_covering(0x2800), None);
    }
}

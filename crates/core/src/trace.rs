//! `ktrace`: the kernel's deterministic flight recorder.
//!
//! Every interesting kernel transition — syscall entry/exit/restart, IPC
//! stages, faults, scheduling — is recorded as a structured
//! [`TraceEvent`] in a bounded per-CPU ring buffer, timestamped with the
//! *simulated* cycle clock. Because the simulation is a deterministic
//! discrete-event system, two runs of the same configuration produce
//! bit-identical traces; this is what lets us *diff* traces across the
//! process and interrupt execution models and check the paper's claim
//! that they are user-visibly equivalent, event by event.
//!
//! Design constraints:
//!
//! * **Zero-cost when off.** Every emission site is guarded by a single
//!   branch on [`Tracer::enabled`]; a disabled tracer allocates nothing
//!   and records nothing.
//! * **Bounded.** Each CPU's ring holds at most the configured capacity;
//!   overflow drops the *oldest* records and counts them in
//!   [`TraceRing::dropped`] — never silently.
//! * **Deterministic.** Records carry the cycle timestamp plus a per-CPU
//!   sequence number, so a total order exists even among same-cycle
//!   events and merged output is reproducible bit for bit.
//!
//! The module also provides [`Histogram`], the log-linear latency
//! histogram backing the Table 6 percentile summaries, and the
//! [`UserVisible`] projection used by the `trace_diff` tool: the
//! per-thread subsequence of events a thread could itself observe
//! (syscall completion codes, its own trace marks, its halt), which is
//! invariant across execution models even though the full trace — costs,
//! preemptions, restarts — legitimately differs.

use std::collections::{BTreeMap, VecDeque};

use fluke_api::SysClass;
use fluke_arch::cost::Cycles;

use crate::ids::ThreadId;

/// One structured kernel event.
///
/// Payloads are small and `Copy`; recording an event never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread entered the kernel with a system call (`eax` holds the
    /// entrypoint number, possibly invalid).
    SyscallEnter {
        /// The calling thread.
        thread: ThreadId,
        /// Raw entrypoint number from `eax`.
        sys: u32,
        /// Table-1 class of the entrypoint (`None` if `sys` is invalid).
        class: Option<SysClass>,
    },
    /// A kernel entry that re-dispatches an in-flight (restarted) call.
    SyscallRestart {
        /// The restarting thread.
        thread: ThreadId,
        /// Raw entrypoint number being re-issued.
        sys: u32,
        /// Table-1 class of the entrypoint (`None` if `sys` is invalid).
        class: Option<SysClass>,
    },
    /// A system call completed user-visibly: result code written to
    /// `eax`, `eip` advanced past the trap. This fires exactly once per
    /// user-issued call, whether the thread was running
    /// (`finish_syscall`) or completed while blocked (continuation
    /// recognition via `complete_blocked`).
    SyscallExit {
        /// The completing thread.
        thread: ThreadId,
        /// Result code delivered in `eax`.
        code: u32,
        /// Table-1 class of the entrypoint that completed (`None` when
        /// the entrypoint number was itself invalid).
        class: Option<SysClass>,
    },
    /// An IPC send stage began moving bytes.
    IpcSend {
        /// The sending thread.
        thread: ThreadId,
        /// Bytes remaining to send at stage start.
        bytes: u32,
    },
    /// An IPC receive stage posted a window.
    IpcReceive {
        /// The receiving thread.
        thread: ThreadId,
        /// Window bytes available at stage start.
        window: u32,
    },
    /// The transfer pump moved one chunk.
    IpcTransfer {
        /// The thread driving the pump.
        thread: ThreadId,
        /// Chunk size in bytes.
        bytes: u32,
    },
    /// A complete IPC message was delivered.
    IpcMessage {
        /// The thread driving the pump at completion.
        thread: ThreadId,
    },
    /// A soft page fault was resolved inline from the mapping hierarchy.
    SoftFault {
        /// The faulting thread.
        thread: ThreadId,
        /// Faulting virtual address.
        addr: u32,
        /// Cycles of remedy work (hierarchy walk + PTE install).
        remedy: Cycles,
    },
    /// A hard fault was converted into an exception IPC to a keeper.
    HardFault {
        /// The faulting thread (now blocked on the pager).
        thread: ThreadId,
        /// Page-aligned offset within the faulting region.
        offset: u32,
    },
    /// A keeper replied: the hard fault is remedied.
    HardFaultDone {
        /// The previously faulting thread.
        thread: ThreadId,
        /// Full remedy cost in cycles (fault raise to keeper reply).
        remedy: Cycles,
    },
    /// Rolled-back preamble work was re-executed after a restart. Emitted
    /// once per rollback window with the total re-executed cycles — the
    /// Table 3 "rollback" column as individual events.
    Rollback {
        /// The thread whose call restarted.
        thread: ThreadId,
        /// Cycles of discarded work re-executed.
        cycles: Cycles,
    },
    /// The scheduler dispatched a thread onto this CPU (context switch).
    CtxSwitch {
        /// The incoming thread.
        thread: ThreadId,
        /// Whether the dispatch also switched address spaces.
        space_switch: bool,
    },
    /// A thread was preempted at a user-mode instruction boundary.
    UserPreempt {
        /// The outgoing thread.
        thread: ThreadId,
    },
    /// A thread was preempted *inside* the kernel at an explicit clean
    /// point (PP/FP configurations).
    KernelPreempt {
        /// The preempted thread (left ready, registers at a restart
        /// point).
        thread: ThreadId,
    },
    /// A thread blocked with its registers at a clean restart point.
    Block {
        /// The blocking thread.
        thread: ThreadId,
    },
    /// A blocked or sleeping thread became runnable.
    Wake {
        /// The woken thread.
        thread: ThreadId,
    },
    /// A thread halted.
    Halt {
        /// The halting thread.
        thread: ThreadId,
    },
    /// A value logged through the `sys_trace` debug channel.
    Mark {
        /// The logging thread.
        thread: ThreadId,
        /// The logged value.
        value: u32,
    },
    /// A `kfault` adversarial perturbation fired (never part of the
    /// user-visible projection: injections perturb *kernel* execution;
    /// the user-visible outcome must not change).
    FaultInjected {
        /// The victim thread.
        thread: ThreadId,
        /// Injection kind ([`crate::kfault::KfaultKind::index`]).
        kind: u32,
        /// The injection-site index that fired.
        site: u64,
    },
}

impl TraceEvent {
    /// A short stable name for summaries and exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SyscallEnter { .. } => "syscall_enter",
            TraceEvent::SyscallRestart { .. } => "syscall_restart",
            TraceEvent::SyscallExit { .. } => "syscall_exit",
            TraceEvent::IpcSend { .. } => "ipc_send",
            TraceEvent::IpcReceive { .. } => "ipc_receive",
            TraceEvent::IpcTransfer { .. } => "ipc_transfer",
            TraceEvent::IpcMessage { .. } => "ipc_message",
            TraceEvent::SoftFault { .. } => "soft_fault",
            TraceEvent::HardFault { .. } => "hard_fault",
            TraceEvent::HardFaultDone { .. } => "hard_fault_done",
            TraceEvent::Rollback { .. } => "rollback",
            TraceEvent::CtxSwitch { .. } => "ctx_switch",
            TraceEvent::UserPreempt { .. } => "user_preempt",
            TraceEvent::KernelPreempt { .. } => "kernel_preempt",
            TraceEvent::Block { .. } => "block",
            TraceEvent::Wake { .. } => "wake",
            TraceEvent::Halt { .. } => "halt",
            TraceEvent::Mark { .. } => "mark",
            TraceEvent::FaultInjected { .. } => "fault_injected",
        }
    }

    /// The thread the event concerns, if any.
    pub fn thread(&self) -> Option<ThreadId> {
        match *self {
            TraceEvent::SyscallEnter { thread, .. }
            | TraceEvent::SyscallRestart { thread, .. }
            | TraceEvent::SyscallExit { thread, .. }
            | TraceEvent::IpcSend { thread, .. }
            | TraceEvent::IpcReceive { thread, .. }
            | TraceEvent::IpcTransfer { thread, .. }
            | TraceEvent::IpcMessage { thread }
            | TraceEvent::SoftFault { thread, .. }
            | TraceEvent::HardFault { thread, .. }
            | TraceEvent::HardFaultDone { thread, .. }
            | TraceEvent::Rollback { thread, .. }
            | TraceEvent::CtxSwitch { thread, .. }
            | TraceEvent::UserPreempt { thread }
            | TraceEvent::KernelPreempt { thread }
            | TraceEvent::Block { thread }
            | TraceEvent::Wake { thread }
            | TraceEvent::Halt { thread }
            | TraceEvent::Mark { thread, .. }
            | TraceEvent::FaultInjected { thread, .. } => Some(thread),
        }
    }
}

/// One recorded event with its position in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated cycle time of the event.
    pub at: Cycles,
    /// CPU that recorded it.
    pub cpu: u32,
    /// Per-CPU monotone sequence number (counts from 0 including dropped
    /// records, so gaps at the front reveal overflow).
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded per-CPU ring of trace records.
///
/// Overflow drops the oldest record and increments [`TraceRing::dropped`]
/// — loss is always explicit, never silent.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    buf: VecDeque<TraceRecord>,
    cap: usize,
    /// Records dropped to make room (oldest-first).
    pub dropped: u64,
    next_seq: u64,
}

impl TraceRing {
    fn with_capacity(cap: usize) -> TraceRing {
        TraceRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
            next_seq: 0,
        }
    }

    fn push(&mut self, at: Cycles, cpu: u32, event: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push_back(TraceRecord {
            at,
            cpu,
            seq,
            event,
        });
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (held + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }
}

/// The kernel's tracer: one bounded ring per CPU plus the enable flag
/// consulted (once, inline) at every emission site.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    /// Whether events are recorded. Immutable over a run.
    pub enabled: bool,
    rings: Vec<TraceRing>,
    /// Rollback cycles accumulated since the last progress point; flushed
    /// as a single [`TraceEvent::Rollback`] when the window closes.
    pub(crate) pending_rollback: Cycles,
}

impl Tracer {
    /// Create a tracer. A disabled tracer allocates nothing.
    pub fn new(enabled: bool, ring_capacity: usize, num_cpus: usize) -> Tracer {
        Tracer {
            enabled,
            rings: if enabled {
                (0..num_cpus)
                    .map(|_| TraceRing::with_capacity(ring_capacity))
                    .collect()
            } else {
                Vec::new()
            },
            pending_rollback: 0,
        }
    }

    /// Record an event (caller has already checked [`Tracer::enabled`]).
    #[inline]
    pub(crate) fn emit(&mut self, cpu: usize, at: Cycles, event: TraceEvent) {
        debug_assert!(self.enabled);
        self.rings[cpu].push(at, cpu as u32, event);
    }

    /// The ring of one CPU.
    pub fn ring(&self, cpu: usize) -> Option<&TraceRing> {
        self.rings.get(cpu)
    }

    /// Heap capacity held by the rings, in records. Zero when disabled —
    /// the "no allocation when off" guarantee, testably.
    pub fn allocated_capacity(&self) -> usize {
        self.rings.iter().map(|r| r.buf.capacity()).sum()
    }

    /// Total events currently held across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records dropped to overflow across all rings.
    pub fn dropped_total(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// All held records merged into one deterministic total order:
    /// by cycle time, then CPU, then sequence number.
    pub fn merged(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self
            .rings
            .iter()
            .flat_map(|r| r.records().copied())
            .collect();
        out.sort_by_key(|r| (r.at, r.cpu, r.seq));
        out
    }

    /// The user-visible projection: for each thread, in order, the events
    /// that thread could itself observe — the result code of each
    /// completed system call, the values it logged through `sys_trace`,
    /// and its halt.
    ///
    /// This is the cross-model invariant. The full event stream
    /// legitimately differs between the process and interrupt models
    /// (different entry/exit costs shift preemption timing, and with it
    /// restarts and context switches), but the per-thread sequence of
    /// observable completions must be identical — the paper's equivalence
    /// claim, made executable.
    pub fn user_visible(&self) -> BTreeMap<ThreadId, Vec<UserVisible>> {
        let mut out: BTreeMap<ThreadId, Vec<UserVisible>> = BTreeMap::new();
        for rec in self.merged() {
            let (thread, ev) = match rec.event {
                TraceEvent::SyscallExit { thread, code, .. } => {
                    (thread, UserVisible::Syscall { code })
                }
                TraceEvent::Mark { thread, value } => (thread, UserVisible::Mark(value)),
                TraceEvent::Halt { thread } => (thread, UserVisible::Halt),
                _ => continue,
            };
            out.entry(thread).or_default().push(ev);
        }
        out
    }
}

/// One event of the user-visible projection (see
/// [`Tracer::user_visible`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserVisible {
    /// A system call completed with this result code in `eax`.
    Syscall {
        /// The delivered result code.
        code: u32,
    },
    /// The thread logged this value via `sys_trace`.
    Mark(u32),
    /// The thread halted.
    Halt,
}

// ----------------------------------------------------------------------
// Histogram.
// ----------------------------------------------------------------------

/// Number of linear sub-buckets per power of two (log-linear layout).
const SUB: u64 = 32;
/// Values below `2 * SUB` get exact unit buckets.
const LINEAR_LIMIT: u64 = 2 * SUB;

/// A log-linear histogram of `u64` samples (cycle latencies).
///
/// Count, sum, min and max are exact, so means and maxima match the raw
/// data bit for bit; percentiles are bucket upper bounds with ≤ ~3%
/// relative error (32 sub-buckets per power of two). This replaces the
/// unbounded `Vec<Cycles>` the latency probe previously accumulated:
/// constant memory regardless of run length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Bucket counts, grown on demand.
    buckets: Vec<u64>,
}

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as u64; // >= 6
        let sub = (v >> (exp - 5)) & (SUB - 1);
        (LINEAR_LIMIT + (exp - 6) * SUB + sub) as usize
    }
}

/// Largest value mapping to the bucket at `index`.
fn bucket_upper(index: usize) -> u64 {
    let i = index as u64;
    if i < LINEAR_LIMIT {
        i
    } else {
        let exp = 6 + (i - LINEAR_LIMIT) / SUB;
        let sub = (i - LINEAR_LIMIT) % SUB;
        let base = 1u64 << exp;
        let step = 1u64 << (exp - 5);
        base + (sub + 1) * step - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.min = if self.count == 1 { v } else { self.min.min(v) };
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at or below which `p` percent of samples fall
    /// (bucket upper bound; exact max for `p = 100`). 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for TraceEvent {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            TraceEvent::SyscallEnter { thread, sys, class } => {
                w.u8(0);
                thread.snap(w);
                w.u32(sys);
                class.snap(w);
            }
            TraceEvent::SyscallRestart { thread, sys, class } => {
                w.u8(1);
                thread.snap(w);
                w.u32(sys);
                class.snap(w);
            }
            TraceEvent::SyscallExit {
                thread,
                code,
                class,
            } => {
                w.u8(2);
                thread.snap(w);
                w.u32(code);
                class.snap(w);
            }
            TraceEvent::IpcSend { thread, bytes } => {
                w.u8(3);
                thread.snap(w);
                w.u32(bytes);
            }
            TraceEvent::IpcReceive { thread, window } => {
                w.u8(4);
                thread.snap(w);
                w.u32(window);
            }
            TraceEvent::IpcTransfer { thread, bytes } => {
                w.u8(5);
                thread.snap(w);
                w.u32(bytes);
            }
            TraceEvent::IpcMessage { thread } => {
                w.u8(6);
                thread.snap(w);
            }
            TraceEvent::SoftFault {
                thread,
                addr,
                remedy,
            } => {
                w.u8(7);
                thread.snap(w);
                w.u32(addr);
                w.u64(remedy);
            }
            TraceEvent::HardFault { thread, offset } => {
                w.u8(8);
                thread.snap(w);
                w.u32(offset);
            }
            TraceEvent::HardFaultDone { thread, remedy } => {
                w.u8(9);
                thread.snap(w);
                w.u64(remedy);
            }
            TraceEvent::Rollback { thread, cycles } => {
                w.u8(10);
                thread.snap(w);
                w.u64(cycles);
            }
            TraceEvent::CtxSwitch {
                thread,
                space_switch,
            } => {
                w.u8(11);
                thread.snap(w);
                w.bool(space_switch);
            }
            TraceEvent::UserPreempt { thread } => {
                w.u8(12);
                thread.snap(w);
            }
            TraceEvent::KernelPreempt { thread } => {
                w.u8(13);
                thread.snap(w);
            }
            TraceEvent::Block { thread } => {
                w.u8(14);
                thread.snap(w);
            }
            TraceEvent::Wake { thread } => {
                w.u8(15);
                thread.snap(w);
            }
            TraceEvent::Halt { thread } => {
                w.u8(16);
                thread.snap(w);
            }
            TraceEvent::Mark { thread, value } => {
                w.u8(17);
                thread.snap(w);
                w.u32(value);
            }
            TraceEvent::FaultInjected { thread, kind, site } => {
                w.u8(18);
                thread.snap(w);
                w.u32(kind);
                w.u64(site);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let tag = r.u8()?;
        Ok(match tag {
            0 => TraceEvent::SyscallEnter {
                thread: Snap::restore(r)?,
                sys: r.u32()?,
                class: Snap::restore(r)?,
            },
            1 => TraceEvent::SyscallRestart {
                thread: Snap::restore(r)?,
                sys: r.u32()?,
                class: Snap::restore(r)?,
            },
            2 => TraceEvent::SyscallExit {
                thread: Snap::restore(r)?,
                code: r.u32()?,
                class: Snap::restore(r)?,
            },
            3 => TraceEvent::IpcSend {
                thread: Snap::restore(r)?,
                bytes: r.u32()?,
            },
            4 => TraceEvent::IpcReceive {
                thread: Snap::restore(r)?,
                window: r.u32()?,
            },
            5 => TraceEvent::IpcTransfer {
                thread: Snap::restore(r)?,
                bytes: r.u32()?,
            },
            6 => TraceEvent::IpcMessage {
                thread: Snap::restore(r)?,
            },
            7 => TraceEvent::SoftFault {
                thread: Snap::restore(r)?,
                addr: r.u32()?,
                remedy: r.u64()?,
            },
            8 => TraceEvent::HardFault {
                thread: Snap::restore(r)?,
                offset: r.u32()?,
            },
            9 => TraceEvent::HardFaultDone {
                thread: Snap::restore(r)?,
                remedy: r.u64()?,
            },
            10 => TraceEvent::Rollback {
                thread: Snap::restore(r)?,
                cycles: r.u64()?,
            },
            11 => TraceEvent::CtxSwitch {
                thread: Snap::restore(r)?,
                space_switch: r.bool()?,
            },
            12 => TraceEvent::UserPreempt {
                thread: Snap::restore(r)?,
            },
            13 => TraceEvent::KernelPreempt {
                thread: Snap::restore(r)?,
            },
            14 => TraceEvent::Block {
                thread: Snap::restore(r)?,
            },
            15 => TraceEvent::Wake {
                thread: Snap::restore(r)?,
            },
            16 => TraceEvent::Halt {
                thread: Snap::restore(r)?,
            },
            17 => TraceEvent::Mark {
                thread: Snap::restore(r)?,
                value: r.u32()?,
            },
            18 => TraceEvent::FaultInjected {
                thread: Snap::restore(r)?,
                kind: r.u32()?,
                site: r.u64()?,
            },
            t => {
                return Err(SnapError::BadTag {
                    what: "TraceEvent",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for TraceRecord {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.at);
        w.u32(self.cpu);
        w.u64(self.seq);
        self.event.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TraceRecord {
            at: r.u64()?,
            cpu: r.u32()?,
            seq: r.u64()?,
            event: Snap::restore(r)?,
        })
    }
}

impl Snap for TraceRing {
    fn snap(&self, w: &mut SnapWriter) {
        self.buf.snap(w);
        w.usize(self.cap);
        w.u64(self.dropped);
        w.u64(self.next_seq);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let buf: VecDeque<TraceRecord> = Snap::restore(r)?;
        let cap = r.usize()?;
        if buf.len() > cap {
            return Err(SnapError::Invalid("trace ring over capacity"));
        }
        Ok(TraceRing {
            buf,
            cap,
            dropped: r.u64()?,
            next_seq: r.u64()?,
        })
    }
}

impl Snap for Tracer {
    fn snap(&self, w: &mut SnapWriter) {
        w.bool(self.enabled);
        self.rings.snap(w);
        w.u64(self.pending_rollback);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Tracer {
            enabled: r.bool()?,
            rings: Snap::restore(r)?,
            pending_rollback: r.u64()?,
        })
    }
}

impl Snap for Histogram {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.min);
        w.u64(self.max);
        self.buckets.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Histogram {
            count: r.u64()?,
            sum: r.u64()?,
            min: r.u64()?,
            max: r.u64()?,
            buckets: Snap::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u32) -> TraceEvent {
        TraceEvent::SyscallEnter {
            thread: ThreadId(t),
            sys: 1,
            class: None,
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_with_explicit_counter() {
        let mut tr = Tracer::new(true, 4, 1);
        for i in 0..10u64 {
            tr.emit(0, i, ev(i as u32));
        }
        let ring = tr.ring(0).unwrap();
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped, 6);
        assert_eq!(tr.dropped_total(), 6);
        assert_eq!(ring.total_recorded(), 10);
        // The oldest were dropped: remaining sequence numbers are 6..10,
        // and timestamps match.
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let ats: Vec<Cycles> = ring.records().map(|r| r.at).collect();
        assert_eq!(ats, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_tracer_allocates_nothing() {
        let tr = Tracer::new(false, 1 << 16, 4);
        assert!(!tr.enabled);
        assert_eq!(tr.allocated_capacity(), 0);
        assert!(tr.is_empty());
        assert_eq!(tr.dropped_total(), 0);
        assert!(tr.merged().is_empty());
    }

    #[test]
    fn merged_orders_across_cpus() {
        let mut tr = Tracer::new(true, 16, 2);
        tr.emit(0, 100, ev(0));
        tr.emit(1, 50, ev(1));
        tr.emit(0, 50, ev(2));
        let order: Vec<(Cycles, u32)> = tr.merged().iter().map(|r| (r.at, r.cpu)).collect();
        assert_eq!(order, vec![(50, 0), (50, 1), (100, 0)]);
    }

    #[test]
    fn user_visible_projection_keeps_per_thread_order() {
        let mut tr = Tracer::new(true, 64, 1);
        let t0 = ThreadId(0);
        let t1 = ThreadId(1);
        tr.emit(
            0,
            1,
            TraceEvent::SyscallExit {
                thread: t0,
                code: 0,
                class: None,
            },
        );
        tr.emit(
            0,
            2,
            TraceEvent::CtxSwitch {
                thread: t1,
                space_switch: true,
            },
        );
        tr.emit(
            0,
            3,
            TraceEvent::Mark {
                thread: t1,
                value: 7,
            },
        );
        tr.emit(0, 4, TraceEvent::Halt { thread: t0 });
        let uv = tr.user_visible();
        assert_eq!(
            uv[&t0],
            vec![UserVisible::Syscall { code: 0 }, UserVisible::Halt]
        );
        assert_eq!(uv[&t1], vec![UserVisible::Mark(7)]);
    }

    #[test]
    fn histogram_exact_summaries() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [200u64, 400, 600] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1200);
        assert_eq!(h.min(), 200);
        assert_eq!(h.max(), 600);
        assert!((h.mean() - 400.0).abs() < 1e-9);
        assert_eq!(h.percentile(100.0), 600);
    }

    #[test]
    fn histogram_percentiles_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 5_000u64), (95.0, 9_500), (99.0, 9_900)] {
            let got = h.percentile(p);
            assert!(got >= exact, "p{p}: {got} < exact {exact}");
            let err = (got - exact) as f64 / exact as f64;
            assert!(err <= 0.04, "p{p}: {got} vs {exact}, err {err}");
        }
        // Percentiles are monotone and bounded by the exact max.
        assert!(h.percentile(50.0) <= h.percentile(95.0));
        assert!(h.percentile(95.0) <= h.percentile(99.0));
        assert!(h.percentile(99.0) <= h.max());
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 1..=LINEAR_LIMIT {
            h.record(v);
        }
        // Unit buckets below the log-linear region: percentiles are exact.
        assert_eq!(h.percentile(50.0), LINEAR_LIMIT / 2);
        assert_eq!(h.percentile(100.0), LINEAR_LIMIT);
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        for v in [0u64, 1, 63, 64, 65, 1000, 4096, 1 << 20, u64::MAX >> 1] {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            if idx > 0 {
                assert!(
                    bucket_upper(idx - 1) < v,
                    "bucket {idx} not minimal for {v}"
                );
            }
        }
    }
}

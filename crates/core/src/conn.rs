//! IPC connections.
//!
//! A connection links a client to a server thread through a Port. The
//! *data-transfer* state lives in the two threads' registers (pointer and
//! count, advanced in place); the connection records only the linkage and
//! message framing — and, for kernel-originated exception IPC, the
//! kernel-side message buffer.

use fluke_arch::cost::Cycles;

use crate::ids::{ObjId, ThreadId};

/// The client end of a connection.
#[derive(Debug)]
pub enum ClientEnd {
    /// An ordinary user thread.
    Thread(ThreadId),
    /// The kernel itself: an exception IPC (e.g. a page fault delivered to
    /// a region keeper). Carries the message bytes and delivery progress.
    Kernel(KernelMsg),
}

/// A kernel-originated message (exception IPC).
#[derive(Debug)]
pub struct KernelMsg {
    /// Message bytes (little-endian words, see `fluke_api::abi`).
    pub bytes: Vec<u8>,
    /// Delivery progress into `bytes`.
    pub pos: usize,
    /// The faulting thread to wake when the keeper replies or disconnects.
    pub fault_thread: ThreadId,
    /// Simulated time the fault was raised (for Table 3 remedy accounting).
    pub raised_at: Cycles,
    /// Index into `Stats::fault_records`.
    pub record: usize,
    /// Bytes of the keeper's reply consumed by the kernel sink.
    pub reply: Vec<u8>,
}

/// Transfer direction over a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Client sends, server receives.
    ClientToServer,
    /// Server sends, client receives.
    ServerToClient,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::ClientToServer => Dir::ServerToClient,
            Dir::ServerToClient => Dir::ClientToServer,
        }
    }
}

/// An IPC connection.
#[derive(Debug)]
pub struct Connection {
    /// Client end.
    pub client: ClientEnd,
    /// Server thread once accepted.
    pub server: Option<ThreadId>,
    /// The port the connection came in through.
    pub port: ObjId,
    /// Whether a client→server message is in progress.
    pub open_c2s: bool,
    /// Whether a server→client message is in progress.
    pub open_s2c: bool,
    /// Pending alert flags (consumed by the next IPC operation).
    pub alert_client: bool,
    /// Pending alert aimed at the server.
    pub alert_server: bool,
}

impl Connection {
    /// New unaccepted connection from a user client.
    pub fn from_thread(client: ThreadId, port: ObjId) -> Self {
        Connection {
            client: ClientEnd::Thread(client),
            server: None,
            port,
            open_c2s: false,
            open_s2c: false,
            alert_client: false,
            alert_server: false,
        }
    }

    /// New kernel exception connection.
    pub fn from_kernel(msg: KernelMsg, port: ObjId) -> Self {
        Connection {
            client: ClientEnd::Kernel(msg),
            server: None,
            port,
            open_c2s: true, // the fault message is ready to deliver
            open_s2c: false,
            alert_client: false,
            alert_server: false,
        }
    }

    /// The client thread, if the client is a user thread.
    pub fn client_thread(&self) -> Option<ThreadId> {
        match &self.client {
            ClientEnd::Thread(t) => Some(*t),
            ClientEnd::Kernel(_) => None,
        }
    }

    /// Whether the client end is the kernel.
    pub fn is_kernel_client(&self) -> bool {
        matches!(self.client, ClientEnd::Kernel(_))
    }

    /// Whether a message is open in the given direction.
    pub fn open(&self, dir: Dir) -> bool {
        match dir {
            Dir::ClientToServer => self.open_c2s,
            Dir::ServerToClient => self.open_s2c,
        }
    }

    /// Set the message-open flag for a direction.
    pub fn set_open(&mut self, dir: Dir, v: bool) {
        match dir {
            Dir::ClientToServer => self.open_c2s = v,
            Dir::ServerToClient => self.open_s2c = v,
        }
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for KernelMsg {
    fn snap(&self, w: &mut SnapWriter) {
        self.bytes.snap(w);
        w.usize(self.pos);
        self.fault_thread.snap(w);
        w.u64(self.raised_at);
        w.usize(self.record);
        self.reply.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(KernelMsg {
            bytes: Snap::restore(r)?,
            pos: r.usize()?,
            fault_thread: Snap::restore(r)?,
            raised_at: r.u64()?,
            record: r.usize()?,
            reply: Snap::restore(r)?,
        })
    }
}

impl Snap for ClientEnd {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            ClientEnd::Thread(t) => {
                w.u8(0);
                t.snap(w);
            }
            ClientEnd::Kernel(m) => {
                w.u8(1);
                m.snap(w);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(ClientEnd::Thread(Snap::restore(r)?)),
            1 => Ok(ClientEnd::Kernel(Snap::restore(r)?)),
            t => Err(SnapError::BadTag {
                what: "ClientEnd",
                tag: t as u32,
            }),
        }
    }
}

impl Snap for Connection {
    fn snap(&self, w: &mut SnapWriter) {
        self.client.snap(w);
        self.server.snap(w);
        self.port.snap(w);
        w.bool(self.open_c2s);
        w.bool(self.open_s2c);
        w.bool(self.alert_client);
        w.bool(self.alert_server);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Connection {
            client: Snap::restore(r)?,
            server: Snap::restore(r)?,
            port: Snap::restore(r)?,
            open_c2s: r.bool()?,
            open_s2c: r.bool()?,
            alert_client: r.bool()?,
            alert_server: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_client_accessors() {
        let c = Connection::from_thread(ThreadId(4), ObjId(9));
        assert_eq!(c.client_thread(), Some(ThreadId(4)));
        assert!(!c.is_kernel_client());
        assert!(!c.open(Dir::ClientToServer));
    }

    #[test]
    fn kernel_client_starts_with_open_message() {
        let msg = KernelMsg {
            bytes: vec![1, 2, 3, 4],
            pos: 0,
            fault_thread: ThreadId(7),
            raised_at: 0,
            record: 0,
            reply: Vec::new(),
        };
        let c = Connection::from_kernel(msg, ObjId(1));
        assert!(c.is_kernel_client());
        assert_eq!(c.client_thread(), None);
        assert!(c.open(Dir::ClientToServer));
    }

    #[test]
    fn open_flags_by_direction() {
        let mut c = Connection::from_thread(ThreadId(0), ObjId(0));
        c.set_open(Dir::ServerToClient, true);
        assert!(c.open(Dir::ServerToClient));
        assert!(!c.open(Dir::ClientToServer));
        assert_eq!(Dir::ClientToServer.flip(), Dir::ServerToClient);
    }
}

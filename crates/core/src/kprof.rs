//! `kprof`: the span-based cycle-attribution profiler.
//!
//! Every simulated cycle the kernel spends is attributed to a node of a
//! small phase tree — user execution, idle, and the kernel phases
//! (entry/exit preamble, dispatch, IPC copy, memory fill, fault IPC,
//! scheduling, locking) — with restart/rollback re-execution split out as
//! a leaf under whichever phase re-ran. Attribution is driven from the
//! *simulated* clock (never host time), so profiles are bit-deterministic,
//! and the hooks touch only profiler state: with `kprof` enabled, every
//! simulated quantity — cycle charges, traces, stats — is unchanged (the
//! zero-perturbation golden-digest test enforces this). Disabled, each
//! hook is a single predictable branch and nothing is allocated beyond
//! the empty struct.
//!
//! The kernel keeps a phase *stack* while it works; the current path is
//! packed into a `u32` (4 bits per level), so entering/leaving a phase
//! and attributing a charge are a few integer ops — no strings, no
//! allocation on the hot path. Self-cycles per path live in a `BTreeMap`
//! keyed by packed path, which also makes every report deterministic.
//!
//! `kprof` additionally feeds the §5.3 preemptibility axis: a
//! **preemption-latency histogram** of event-raised → next-dispatch
//! cycles, recorded for every thread a timer event wakes (the Table 6
//! probe generalized to all timer-driven wakeups).

use std::collections::BTreeMap;

use fluke_arch::cost::Cycles;

use crate::trace::Histogram;

/// A kernel phase (one level of the attribution tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Phase {
    /// Kernel entry preamble (trap save, model-dependent).
    Entry = 1,
    /// Kernel exit path (result delivery, latched-preemption check).
    Exit = 2,
    /// System-call dispatch: the handler body.
    Dispatch = 3,
    /// The IPC transfer pump's byte-copy work.
    IpcCopy = 4,
    /// Soft-fault resolution: the mapping-hierarchy walk that fills a
    /// page-table entry.
    MemFill = 5,
    /// Converting a hard fault into exception IPC to the keeper.
    FaultIpc = 6,
    /// Context/space switch work in the scheduler.
    Sched = 7,
    /// Kernel lock overhead: big-lock waits, mutex acquire/release, and
    /// the Full-preemption locking surcharge.
    Lock = 8,
    /// Restart/rollback overhead: re-execution of preamble work after an
    /// atomic call rolled back to its register continuation (a leaf under
    /// whichever phase re-ran).
    Restart = 9,
}

impl Phase {
    /// Phase name as used in collapsed-stack lines (snake_case).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Entry => "entry",
            Phase::Exit => "exit",
            Phase::Dispatch => "dispatch",
            Phase::IpcCopy => "ipc_copy",
            Phase::MemFill => "mem_fill",
            Phase::FaultIpc => "fault_ipc",
            Phase::Sched => "sched",
            Phase::Lock => "lock",
            Phase::Restart => "restart",
        }
    }

    fn from_nibble(n: u32) -> Option<Phase> {
        Some(match n {
            1 => Phase::Entry,
            2 => Phase::Exit,
            3 => Phase::Dispatch,
            4 => Phase::IpcCopy,
            5 => Phase::MemFill,
            6 => Phase::FaultIpc,
            7 => Phase::Sched,
            8 => Phase::Lock,
            9 => Phase::Restart,
            _ => return None,
        })
    }
}

/// Maximum phase-stack depth a packed `u32` path can hold.
const MAX_DEPTH: u32 = 8;

/// Decode a packed path into its phases, root first.
fn unpack(code: u32) -> Vec<Phase> {
    let mut out = Vec::new();
    let mut c = code;
    while c != 0 {
        out.push(Phase::from_nibble(c & 0xf).expect("valid packed phase"));
        c >>= 4;
    }
    out
}

/// Render a packed path as a collapsed-stack frame string
/// (`kernel;dispatch;ipc_copy`).
pub fn path_name(code: u32) -> String {
    let mut s = String::from("kernel");
    for p in unpack(code) {
        s.push(';');
        s.push_str(p.name());
    }
    s
}

/// The profiler state held by the kernel. All methods are no-ops when
/// disabled (one branch); when enabled they mutate only this struct.
#[derive(Debug, Clone, Default)]
pub struct Kprof {
    /// Whether attribution is active (set from `Config::kprof`).
    pub enabled: bool,
    /// Maintain the phase stack even when attribution is off, so `kspan`
    /// can label per-request charges by phase path without full `kprof`.
    track_paths: bool,
    /// Current phase-stack depth.
    depth: u32,
    /// Packed current path (4 bits per level; 0 = kernel root).
    code: u32,
    /// Set while inside a `klock_section`, routing its charge to `Lock`.
    in_lock: bool,
    /// Self-cycles of user-mode execution.
    user: u64,
    /// Self-cycles of idle waiting.
    idle: u64,
    /// Self-cycles per kernel path (packed path → cycles; 0 = kernel
    /// root's own work, e.g. native-thread bodies).
    kernel: BTreeMap<u32, u64>,
    /// Event-raised → next-dispatch latency, for every timer-woken thread.
    preempt_latency: Histogram,
}

impl Kprof {
    /// A profiler in the given state; allocates nothing until cycles are
    /// attributed.
    pub fn new(enabled: bool) -> Kprof {
        Kprof {
            enabled,
            ..Kprof::default()
        }
    }

    /// Keep the phase stack maintained even with attribution disabled
    /// (host-side only; simulated quantities are untouched either way).
    pub(crate) fn enable_path_tracking(&mut self) {
        self.track_paths = true;
    }

    /// The packed code of the current phase path, with the `Restart`
    /// leaf appended while rollback re-execution is active — exactly the
    /// path [`Kprof::attr_kernel`] would charge.
    #[inline]
    pub(crate) fn current_code(&self, rollback: bool) -> u32 {
        if rollback {
            self.code | (Phase::Restart as u32) << (4 * self.depth)
        } else {
            self.code
        }
    }

    /// Push a phase onto the attribution stack.
    #[inline]
    pub(crate) fn enter(&mut self, p: Phase) {
        if !(self.enabled || self.track_paths) {
            return;
        }
        debug_assert!(self.depth < MAX_DEPTH, "kprof phase stack overflow");
        self.code |= (p as u32) << (4 * self.depth);
        self.depth += 1;
    }

    /// Pop the current phase.
    #[inline]
    pub(crate) fn exit(&mut self) {
        if !(self.enabled || self.track_paths) {
            return;
        }
        debug_assert!(self.depth > 0, "kprof phase stack underflow");
        self.depth -= 1;
        self.code &= !(0xf << (4 * self.depth));
    }

    /// Route the next `attr_kernel` charges to the `Lock` bucket
    /// (`klock_section` acquire/release cost).
    #[inline]
    pub(crate) fn lock_begin(&mut self) {
        if self.enabled {
            self.in_lock = true;
        }
    }

    /// End the `Lock` routing started by [`Kprof::lock_begin`].
    #[inline]
    pub(crate) fn lock_end(&mut self) {
        if self.enabled {
            self.in_lock = false;
        }
    }

    /// Attribute a kernel charge: `c` base cycles to the current path
    /// (with a `Restart` leaf while rollback re-execution is active) and
    /// `lock_extra` surcharge cycles (the Full-preemption locking model)
    /// to the top-level `Lock` bucket.
    #[inline]
    pub(crate) fn attr_kernel(&mut self, c: Cycles, rollback: bool, lock_extra: Cycles) {
        if !self.enabled {
            return;
        }
        let lock_code = Phase::Lock as u32;
        if self.in_lock {
            *self.kernel.entry(lock_code).or_insert(0) += c + lock_extra;
            return;
        }
        let code = if rollback {
            self.code | (Phase::Restart as u32) << (4 * self.depth)
        } else {
            self.code
        };
        *self.kernel.entry(code).or_insert(0) += c;
        if lock_extra > 0 {
            *self.kernel.entry(lock_code).or_insert(0) += lock_extra;
        }
    }

    /// Attribute user-mode execution cycles.
    #[inline]
    pub(crate) fn attr_user(&mut self, c: Cycles) {
        if self.enabled {
            self.user += c;
        }
    }

    /// Attribute idle cycles.
    #[inline]
    pub(crate) fn attr_idle(&mut self, c: Cycles) {
        if self.enabled {
            self.idle += c;
        }
    }

    /// Attribute big-kernel-lock wait cycles to the `Lock` bucket.
    #[inline]
    pub(crate) fn attr_lock(&mut self, c: Cycles) {
        if self.enabled {
            *self.kernel.entry(Phase::Lock as u32).or_insert(0) += c;
        }
    }

    /// Record one event-raised → dispatch latency observation.
    #[inline]
    pub(crate) fn record_latency(&mut self, cycles: Cycles) {
        if self.enabled {
            self.preempt_latency.record(cycles);
        }
    }

    /// The preemption-latency histogram (event-raised → next-dispatch
    /// cycles for every timer-woken thread; the §5.3 axis).
    pub fn preempt_latency(&self) -> &Histogram {
        &self.preempt_latency
    }

    /// User-mode self cycles.
    pub fn user_cycles(&self) -> u64 {
        self.user
    }

    /// Idle self cycles.
    pub fn idle_cycles(&self) -> u64 {
        self.idle
    }

    /// Total kernel cycles across all kernel paths.
    pub fn kernel_cycles(&self) -> u64 {
        self.kernel.values().sum()
    }

    /// Total attributed cycles: user + idle + kernel. With `kprof` on for
    /// a whole run this equals the sum of all CPUs' clocks exactly (the
    /// sum-exactness invariant; asserted by the bench tests).
    pub fn total(&self) -> u64 {
        self.user + self.idle + self.kernel_cycles()
    }

    /// Self-cycles attributed to one exact kernel path (root-first), e.g.
    /// `&[Phase::Dispatch, Phase::IpcCopy]`. `&[]` is the kernel root.
    pub fn self_cycles(&self, path: &[Phase]) -> u64 {
        let mut code = 0u32;
        for (i, p) in path.iter().enumerate() {
            code |= (*p as u32) << (4 * i);
        }
        self.kernel.get(&code).copied().unwrap_or(0)
    }

    /// The flat profile: (collapsed path, self cycles) for every node with
    /// attributed cycles — `user` and `idle` first, then kernel paths in
    /// deterministic packed-code order.
    pub fn flat(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.kernel.len() + 2);
        if self.user > 0 {
            out.push(("user".to_string(), self.user));
        }
        if self.idle > 0 {
            out.push(("idle".to_string(), self.idle));
        }
        for (&code, &c) in &self.kernel {
            out.push((path_name(code), c));
        }
        out
    }

    /// Collapsed-stack flamegraph lines (`path cycles`), one per node —
    /// feed to any FlameGraph implementation.
    pub fn collapsed(&self) -> Vec<String> {
        self.flat()
            .into_iter()
            .map(|(p, c)| format!("{p} {c}"))
            .collect()
    }

    /// Inclusive cycles of a packed path: its self cycles plus every
    /// descendant's.
    fn inclusive(&self, code: u32, depth: u32) -> u64 {
        let mask = ((1u64 << (4 * depth.min(MAX_DEPTH))) - 1) as u32;
        self.kernel
            .iter()
            .filter(|(&k, _)| k & mask == code)
            .map(|(_, &c)| c)
            .sum()
    }

    /// The call-tree report: one indented line per node with inclusive
    /// ("total") and self cycles and the share of all attributed cycles.
    pub fn tree_report(&self) -> String {
        let total = self.total().max(1);
        let mut out = String::new();
        let pct = |c: u64| 100.0 * c as f64 / total as f64;
        out.push_str(&format!(
            "{:<40} {:>14} {:>14} {:>6}\n",
            "phase", "total", "self", "%"
        ));
        out.push_str(&format!(
            "{:<40} {:>14} {:>14} {:>6.1}\n",
            "user",
            self.user,
            self.user,
            pct(self.user)
        ));
        out.push_str(&format!(
            "{:<40} {:>14} {:>14} {:>6.1}\n",
            "idle",
            self.idle,
            self.idle,
            pct(self.idle)
        ));
        let kt = self.kernel_cycles();
        out.push_str(&format!(
            "{:<40} {:>14} {:>14} {:>6.1}\n",
            "kernel",
            kt,
            self.kernel.get(&0).copied().unwrap_or(0),
            pct(kt)
        ));
        // Children in depth-first order: the BTreeMap's packed-code order
        // is not DFS, so walk explicitly.
        self.tree_children(0, 0, 1, &mut out, total);
        out
    }

    fn tree_children(&self, code: u32, depth: u32, indent: usize, out: &mut String, total: u64) {
        // Candidate child phases at this depth, in Phase order.
        for n in 1..=9u32 {
            let child = code | n << (4 * depth);
            let inc = self.inclusive(child, depth + 1);
            if inc == 0 {
                continue;
            }
            let slf = self.kernel.get(&child).copied().unwrap_or(0);
            let name = format!(
                "{}{}",
                "  ".repeat(indent),
                Phase::from_nibble(n).expect("n in range").name()
            );
            out.push_str(&format!(
                "{:<40} {:>14} {:>14} {:>6.1}\n",
                name,
                inc,
                slf,
                100.0 * inc as f64 / total as f64
            ));
            if depth + 1 < MAX_DEPTH {
                self.tree_children(child, depth + 1, indent + 1, out, total);
            }
        }
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Kprof {
    fn snap(&self, w: &mut SnapWriter) {
        w.bool(self.enabled);
        w.bool(self.track_paths);
        w.u32(self.depth);
        w.u32(self.code);
        w.bool(self.in_lock);
        w.u64(self.user);
        w.u64(self.idle);
        self.kernel.snap(w);
        self.preempt_latency.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Kprof {
            enabled: r.bool()?,
            track_paths: r.bool()?,
            depth: r.u32()?,
            code: r.u32()?,
            in_lock: r.bool()?,
            user: r.u64()?,
            idle: r.u64()?,
            kernel: Snap::restore(r)?,
            preempt_latency: Snap::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_attributes_nothing() {
        let mut k = Kprof::new(false);
        k.enter(Phase::Dispatch);
        k.attr_kernel(100, false, 0);
        k.attr_user(50);
        k.attr_idle(25);
        k.record_latency(10);
        k.exit();
        assert_eq!(k.total(), 0);
        assert!(k.preempt_latency().is_empty());
        assert!(k.flat().is_empty());
    }

    #[test]
    fn paths_pack_and_render() {
        let mut k = Kprof::new(true);
        k.attr_kernel(5, false, 0); // kernel root self
        k.enter(Phase::Dispatch);
        k.attr_kernel(10, false, 0);
        k.enter(Phase::IpcCopy);
        k.attr_kernel(20, false, 0);
        k.exit();
        k.exit();
        assert_eq!(k.self_cycles(&[]), 5);
        assert_eq!(k.self_cycles(&[Phase::Dispatch]), 10);
        assert_eq!(k.self_cycles(&[Phase::Dispatch, Phase::IpcCopy]), 20);
        let lines = k.collapsed();
        assert!(lines.contains(&"kernel 5".to_string()));
        assert!(lines.contains(&"kernel;dispatch 10".to_string()));
        assert!(lines.contains(&"kernel;dispatch;ipc_copy 20".to_string()));
        assert_eq!(k.total(), 35);
    }

    #[test]
    fn rollback_charges_land_under_restart_leaf() {
        let mut k = Kprof::new(true);
        k.enter(Phase::Dispatch);
        k.attr_kernel(10, true, 0);
        k.attr_kernel(30, false, 0);
        k.exit();
        assert_eq!(k.self_cycles(&[Phase::Dispatch, Phase::Restart]), 10);
        assert_eq!(k.self_cycles(&[Phase::Dispatch]), 30);
    }

    #[test]
    fn lock_surcharge_and_sections_land_under_lock() {
        let mut k = Kprof::new(true);
        k.enter(Phase::Dispatch);
        k.attr_kernel(100, false, 40); // FP surcharge
        k.lock_begin();
        k.attr_kernel(7, false, 2); // klock_section charge (+ its surcharge)
        k.lock_end();
        k.exit();
        k.attr_lock(11); // big-lock wait
        assert_eq!(k.self_cycles(&[Phase::Dispatch]), 100);
        assert_eq!(k.self_cycles(&[Phase::Lock]), 40 + 9 + 11);
        assert_eq!(k.total(), 160);
    }

    #[test]
    fn tree_report_totals_include_children() {
        let mut k = Kprof::new(true);
        k.attr_user(1000);
        k.enter(Phase::Dispatch);
        k.attr_kernel(10, false, 0);
        k.enter(Phase::MemFill);
        k.attr_kernel(90, false, 0);
        k.exit();
        k.exit();
        let rep = k.tree_report();
        // dispatch's inclusive total is 100 (10 self + 90 mem_fill).
        let dispatch_line = rep
            .lines()
            .find(|l| l.trim_start().starts_with("dispatch"))
            .expect("dispatch line");
        assert!(dispatch_line.contains("100"), "{rep}");
        assert!(rep.lines().any(|l| l.trim_start().starts_with("mem_fill")));
    }

    #[test]
    fn latency_histogram_records_when_enabled() {
        let mut k = Kprof::new(true);
        k.record_latency(123);
        k.record_latency(456);
        assert_eq!(k.preempt_latency().count(), 2);
        assert_eq!(k.preempt_latency().max(), 456);
    }
}

#![warn(missing_docs)]
//! The Fluke kernel reproduction: a purely atomic (fully interruptible and
//! restartable) kernel API over nine primitive object types, implemented by
//! a single kernel source configurable between the **process** and
//! **interrupt** execution models and three preemption styles — the five
//! configurations of the paper's Table 4.
//!
//! # Quick start
//!
//! ```
//! use fluke_arch::{Assembler, Reg, UserRegs};
//! use fluke_api::Sys;
//! use fluke_core::{Config, Kernel, RunExit};
//!
//! // A program that calls thread_self and halts.
//! let mut a = Assembler::new("hello");
//! a.movi(Reg::Eax, Sys::ThreadSelf.num());
//! a.syscall();
//! a.halt();
//!
//! let mut k = Kernel::new(Config::process_np());
//! let prog = k.register_program(a.finish());
//! let space = k.create_space();
//! let t = k.spawn_thread(space, prog, UserRegs::new(), 8);
//! assert_eq!(k.run(None), RunExit::AllHalted);
//! assert!(k.thread_halted(t));
//! ```

pub mod config;
pub mod conn;
pub mod events;
pub mod flowcheck;
pub mod ids;
pub mod kernel;
pub mod kfault;
pub mod kfuzz;
pub mod kprof;
pub mod krec;
pub mod kspan;
pub mod kstat;
pub mod object;
pub mod phys;
pub mod sched;
pub mod space;
pub mod thread;
pub mod tlb;
pub mod trace;
pub mod waitq;

pub use config::{Config, ExecModel, Preemption, TraceConfig, PP_CHUNK_BYTES};
pub use flowcheck::{Flowcheck, Violation, ViolationKind};
pub use ids::{ConnId, ObjId, SpaceId, ThreadId};
pub use kernel::{block_audit_hits, Kernel, MemAccessError, MemRun, RunExit};
pub use kfault::{Kfault, KfaultConfig, KfaultKind};
pub use kprof::{Kprof, Phase};
pub use krec::{
    trace_suffix_digest, Divergence, Krec, KrecConfig, Recording, ReplayError, Replayer, RunWindow,
    Snap, SnapError, SnapReader, SnapWriter, Snapshot,
};
pub use kspan::{FlowEdge, Kspan, ObjectContention, RequestRecord, USER_FRAME};
pub use kstat::{
    FaultKind, FaultRecord, FaultSide, KstatEntry, KstatRegistry, KstatValue, MemGauges,
    PerSysCounts, Stats,
};
pub use thread::{NativeAction, NativeBody, RunState, WaitReason};
pub use tlb::TlbStats;
pub use trace::{Histogram, TraceEvent, TraceRecord, TraceRing, Tracer, UserVisible};
pub use waitq::{WaitQueue, WaitqStats};

//! The unified wait-queue subsystem.
//!
//! Every place the kernel parks a waiter on an object — mutex and condition
//! queues, port connect/server/oneway queues, portset server queues, thread
//! joiners and donors, space idle-waiters — uses one deterministic
//! [`WaitQueue`] type instead of ad-hoc `VecDeque` bookkeeping. The queue
//! preserves exact FIFO semantics (golden traces depend on wake order) while
//! making the *host-side* cost of every operation O(1):
//!
//! - **Enqueue / dequeue** are `VecDeque` pushes and pops.
//! - **Cancel** (a waiter unlinking itself: `thread_interrupt`, state
//!   extraction, teardown) is the operation that used to be a linear
//!   `retain()` over the queue. Here it is an O(1) *tombstone*: the waiter
//!   is removed from the generation-tagged hash index and its queue entry
//!   is skipped lazily when it reaches the front. The linear eager-removal
//!   path is retained behind [`crate::Config::port_index`]` = false` as the
//!   differential oracle — both paths produce bit-identical simulated
//!   behavior (same wake order, same charges), only host cost differs.
//! - **Membership** tests are hash lookups instead of scans.
//!
//! Generation tags make tombstones ABA-safe: a member that cancels and
//! re-enqueues gets a fresh generation, so its stale entry (still in the
//! ring) can never be mistaken for the live one. Tombstones are compacted
//! away once they outnumber live entries, so memory stays O(live) amortized.
//!
//! The queue is policy-capable: [`WaitQueue::pop_max_by`] implements
//! priority dequeue (highest key first, FIFO among equals) for subsystems
//! that want it. The kernel's object queues all use plain FIFO — the wake
//! order the blessed golden traces pin.
//!
//! Counters land in [`WaitqStats`] (surfaced as `kernel.waitq.*`): pure
//! host-side observability, never consulted by simulated behavior.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Counters for the `kernel.waitq.*` kstat family. One instance in
/// [`crate::kstat::Stats`] aggregates across every queue in the kernel.
#[derive(Debug, Default, Clone)]
pub struct WaitqStats {
    /// Waiters enqueued (back of queue).
    pub enqueues: u64,
    /// Waiters re-queued at the *front* (pump requeue after a partial
    /// rendezvous: the peer keeps its place).
    pub requeues: u64,
    /// Live waiters dequeued (wake-one pops, wake-all drains, accepts).
    pub wakes: u64,
    /// Drain-the-queue operations (broadcast, teardown).
    pub wake_alls: u64,
    /// Waiters cancelled (unlinked from the middle of a queue).
    pub cancels: u64,
    /// Cancels that took the linear eager-removal path (the
    /// `port_index = false` differential oracle).
    pub cancels_linear: u64,
    /// Dead (tombstoned) entries skipped by pops and drains.
    pub tombstones_skipped: u64,
    /// Amortized compaction sweeps triggered by tombstone buildup.
    pub compactions: u64,
}

impl WaitqStats {
    /// Fold another stats block into this one (retired-object accounting).
    pub fn merge(&mut self, o: &WaitqStats) {
        self.enqueues += o.enqueues;
        self.requeues += o.requeues;
        self.wakes += o.wakes;
        self.wake_alls += o.wake_alls;
        self.cancels += o.cancels;
        self.cancels_linear += o.cancels_linear;
        self.tombstones_skipped += o.tombstones_skipped;
        self.compactions += o.compactions;
    }
}

/// A deterministic FIFO wait queue over copyable member ids (threads,
/// connections) with O(1) enqueue, dequeue, cancel and membership.
///
/// See the module docs for the design; the short version is a `VecDeque`
/// ring of `(member, generation)` entries plus a hash index mapping each
/// *live* member to the generation of its current entry. Entries whose
/// generation no longer matches the index are tombstones and are skipped.
#[derive(Debug)]
pub struct WaitQueue<T> {
    /// FIFO ring of (member, generation) entries, tombstones included.
    ring: VecDeque<(T, u64)>,
    /// Live members → generation of their current ring entry.
    live: HashMap<T, u64>,
    /// Next generation tag to hand out.
    next_gen: u64,
}

impl<T> Default for WaitQueue<T> {
    fn default() -> Self {
        WaitQueue {
            ring: VecDeque::new(),
            live: HashMap::new(),
            next_gen: 0,
        }
    }
}

impl<T: Copy + Eq + Hash> WaitQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live waiters.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live waiter is queued.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Whether `x` is queued (live). O(1).
    pub fn contains(&self, x: T) -> bool {
        self.live.contains_key(&x)
    }

    /// Enqueue `x` at the back. O(1).
    ///
    /// A member may hold at most one live entry; re-enqueueing while live
    /// tombstones the old entry (callers never do this in normal operation
    /// — a thread waits on one thing at a time).
    pub fn enqueue(&mut self, x: T, st: &mut WaitqStats) {
        debug_assert!(!self.contains(x), "member enqueued while already queued");
        let gen = self.next_gen;
        self.next_gen += 1;
        self.live.insert(x, gen);
        self.ring.push_back((x, gen));
        st.enqueues += 1;
    }

    /// Re-queue `x` at the *front* — the pump's partial-rendezvous requeue,
    /// where the peer must keep its place at the head of the line. O(1).
    pub fn requeue_front(&mut self, x: T, st: &mut WaitqStats) {
        debug_assert!(!self.contains(x), "member requeued while already queued");
        let gen = self.next_gen;
        self.next_gen += 1;
        self.live.insert(x, gen);
        self.ring.push_front((x, gen));
        st.requeues += 1;
    }

    /// Dequeue the oldest live waiter (wake-one / accept-one). Amortized
    /// O(1): dead entries are skipped and discarded as they surface.
    pub fn pop(&mut self, st: &mut WaitqStats) -> Option<T> {
        while let Some((x, gen)) = self.ring.pop_front() {
            if self.live.get(&x) == Some(&gen) {
                self.live.remove(&x);
                st.wakes += 1;
                return Some(x);
            }
            st.tombstones_skipped += 1;
        }
        None
    }

    /// Drain every live waiter in FIFO order (wake-all / broadcast /
    /// teardown).
    pub fn drain(&mut self, st: &mut WaitqStats) -> Vec<T> {
        st.wake_alls += 1;
        let mut out = Vec::with_capacity(self.live.len());
        while let Some(x) = self.pop(st) {
            out.push(x);
        }
        out
    }

    /// Unlink `x` from the queue. Returns whether it was live.
    ///
    /// With `indexed` (the default [`crate::Config::port_index`] mode) this
    /// is an O(1) tombstone: drop the index entry, let the ring entry die
    /// lazily. With `indexed = false` the entry is eagerly removed by a
    /// linear sweep — the reference path the differential oracle runs.
    pub fn cancel(&mut self, x: T, indexed: bool, st: &mut WaitqStats) -> bool {
        let Some(gen) = self.live.remove(&x) else {
            return false;
        };
        st.cancels += 1;
        if indexed {
            self.maybe_compact(st);
        } else {
            st.cancels_linear += 1;
            self.ring.retain(|&(m, g)| !(m == x && g == gen));
        }
        true
    }

    /// Iterate the live waiters in FIFO order without dequeuing them
    /// (portset sweeps, state inspection).
    pub fn iter_live(&self) -> impl Iterator<Item = T> + '_ {
        self.ring
            .iter()
            .filter(|(x, gen)| self.live.get(x) == Some(gen))
            .map(|&(x, _)| x)
    }

    /// Priority-dequeue policy: pop the live waiter with the largest
    /// `key(x)`, FIFO among equals. O(live) — a policy capability for
    /// subsystems that opt in; the kernel's object queues are FIFO (the
    /// wake order the golden traces pin).
    pub fn pop_max_by<K: Ord>(&mut self, key: impl Fn(T) -> K, st: &mut WaitqStats) -> Option<T> {
        let best = self
            .iter_live()
            .map(|x| (std::cmp::Reverse(key(x)), x))
            .min_by(|(a, _), (b, _)| a.cmp(b))
            .map(|(_, x)| x)?;
        let taken = self.cancel(best, true, st);
        debug_assert!(taken);
        // The cancel above counted itself; reclassify as a wake.
        st.cancels -= 1;
        st.wakes += 1;
        Some(best)
    }

    /// Compact the ring once tombstones outnumber live entries (amortized
    /// O(1) per cancel). Order of live entries is untouched.
    fn maybe_compact(&mut self, st: &mut WaitqStats) {
        if self.ring.len() >= 8 && self.ring.len() >= 2 * self.live.len() {
            let live = &self.live;
            self.ring.retain(|(x, gen)| live.get(x) == Some(gen));
            st.compactions += 1;
        }
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for WaitqStats {
    fn snap(&self, w: &mut SnapWriter) {
        for v in [
            self.enqueues,
            self.requeues,
            self.wakes,
            self.wake_alls,
            self.cancels,
            self.cancels_linear,
            self.tombstones_skipped,
            self.compactions,
        ] {
            w.u64(v);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(WaitqStats {
            enqueues: r.u64()?,
            requeues: r.u64()?,
            wakes: r.u64()?,
            wake_alls: r.u64()?,
            cancels: r.u64()?,
            cancels_linear: r.u64()?,
            tombstones_skipped: r.u64()?,
            compactions: r.u64()?,
        })
    }
}

// The ring is serialized verbatim (tombstones included) with a per-entry
// liveness flag; the live index is rebuilt from flagged entries. `live ⊆
// ring` is a structural invariant, so the flags carry the whole index — no
// `Ord` bound on `T` needed for canonical ordering.
impl<T: Snap + Copy + Eq + Hash> Snap for WaitQueue<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.next_gen);
        w.usize(self.ring.len());
        for &(x, gen) in &self.ring {
            x.snap(w);
            w.u64(gen);
            w.bool(self.live.get(&x) == Some(&gen));
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let next_gen = r.u64()?;
        let n = r.usize()?;
        let mut ring = VecDeque::with_capacity(n.min(1 << 20));
        let mut live = HashMap::new();
        for _ in 0..n {
            let x = T::restore(r)?;
            let gen = r.u64()?;
            if r.bool()? && live.insert(x, gen).is_some() {
                return Err(SnapError::Invalid("waitqueue member live twice"));
            }
            ring.push_back((x, gen));
        }
        Ok(WaitQueue {
            ring,
            live,
            next_gen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st() -> WaitqStats {
        WaitqStats::default()
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = WaitQueue::new();
        let mut s = st();
        for i in 0..5u32 {
            q.enqueue(i, &mut s);
        }
        assert_eq!(q.len(), 5);
        for i in 0..5u32 {
            assert_eq!(q.pop(&mut s), Some(i));
        }
        assert_eq!(q.pop(&mut s), None);
        assert_eq!(s.enqueues, 5);
        assert_eq!(s.wakes, 5);
    }

    #[test]
    fn requeue_front_keeps_place() {
        let mut q = WaitQueue::new();
        let mut s = st();
        q.enqueue(1u32, &mut s);
        q.enqueue(2, &mut s);
        let head = q.pop(&mut s).unwrap();
        assert_eq!(head, 1);
        q.requeue_front(head, &mut s);
        assert_eq!(q.pop(&mut s), Some(1));
        assert_eq!(q.pop(&mut s), Some(2));
        assert_eq!(s.requeues, 1);
    }

    #[test]
    fn indexed_cancel_tombstones_lazily() {
        let mut q = WaitQueue::new();
        let mut s = st();
        for i in 0..4u32 {
            q.enqueue(i, &mut s);
        }
        assert!(q.cancel(1, true, &mut s));
        assert!(q.cancel(2, true, &mut s));
        assert!(!q.cancel(2, true, &mut s), "double cancel is a no-op");
        assert!(!q.contains(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(&mut s), Some(0));
        assert_eq!(q.pop(&mut s), Some(3));
        assert!(s.tombstones_skipped > 0);
        assert_eq!(s.cancels_linear, 0);
    }

    #[test]
    fn linear_cancel_matches_indexed_order() {
        // The differential-oracle property in miniature: same op sequence,
        // both cancel modes, identical pop order.
        let ops: &[(&str, u32)] = &[
            ("enq", 1),
            ("enq", 2),
            ("enq", 3),
            ("cancel", 2),
            ("enq", 4),
            ("cancel", 1),
            ("enq", 2),
            ("cancel", 4),
        ];
        let mut popped = Vec::new();
        for indexed in [true, false] {
            let mut q = WaitQueue::new();
            let mut s = st();
            for &(op, x) in ops {
                match op {
                    "enq" => q.enqueue(x, &mut s),
                    _ => {
                        q.cancel(x, indexed, &mut s);
                    }
                }
            }
            let mut order = Vec::new();
            while let Some(x) = q.pop(&mut s) {
                order.push(x);
            }
            popped.push(order);
            if !indexed {
                assert!(s.cancels_linear > 0);
            }
        }
        assert_eq!(popped[0], popped[1]);
        assert_eq!(popped[0], vec![3, 2]);
    }

    #[test]
    fn generations_are_aba_safe() {
        let mut q = WaitQueue::new();
        let mut s = st();
        q.enqueue(7u32, &mut s);
        q.cancel(7, true, &mut s); // stale entry stays in the ring
        q.enqueue(8, &mut s);
        q.enqueue(7, &mut s); // fresh generation, queued *after* 8
        assert_eq!(q.pop(&mut s), Some(8));
        assert_eq!(q.pop(&mut s), Some(7));
        assert_eq!(q.pop(&mut s), None);
    }

    #[test]
    fn tombstones_get_compacted() {
        let mut q = WaitQueue::new();
        let mut s = st();
        for i in 0..32u32 {
            q.enqueue(i, &mut s);
        }
        for i in 0..31u32 {
            q.cancel(i, true, &mut s);
        }
        assert!(s.compactions > 0);
        assert!(q.ring.len() <= 2 * q.len().max(4));
        assert_eq!(q.pop(&mut s), Some(31));
    }

    #[test]
    fn iter_live_skips_dead() {
        let mut q = WaitQueue::new();
        let mut s = st();
        for i in 0..4u32 {
            q.enqueue(i, &mut s);
        }
        q.cancel(0, true, &mut s);
        q.cancel(2, true, &mut s);
        assert_eq!(q.iter_live().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn priority_policy_pops_max_fifo_among_equals() {
        let mut q = WaitQueue::new();
        let mut s = st();
        // Members 10..15 with priority = member % 3.
        for i in 10u32..15 {
            q.enqueue(i, &mut s);
        }
        // Priorities: 10→1, 11→2, 12→0, 13→1, 14→2. Max is 2; FIFO among
        // equals picks 11 before 14.
        assert_eq!(q.pop_max_by(|x| x % 3, &mut s), Some(11));
        assert_eq!(q.pop_max_by(|x| x % 3, &mut s), Some(14));
        assert_eq!(q.pop_max_by(|x| x % 3, &mut s), Some(10));
        assert_eq!(q.pop_max_by(|x| x % 3, &mut s), Some(13));
        assert_eq!(q.pop_max_by(|x| x % 3, &mut s), Some(12));
        assert_eq!(q.pop_max_by(|x| x % 3, &mut s), None);
    }

    #[test]
    fn drain_returns_fifo_live_set() {
        let mut q = WaitQueue::new();
        let mut s = st();
        for i in 0..5u32 {
            q.enqueue(i, &mut s);
        }
        q.cancel(3, true, &mut s);
        assert_eq!(q.drain(&mut s), vec![0, 1, 2, 4]);
        assert!(q.is_empty());
        assert_eq!(s.wake_alls, 1);
    }
}

//! A software TLB: a small direct-mapped translation cache in front of each
//! space's page-table `HashMap`.
//!
//! Real hardware amortises page-table walks with a TLB; the simulator pays a
//! `HashMap` lookup per byte on its hot paths without one. This cache is a
//! pure host-side optimisation: a hit and a miss produce identical simulated
//! outcomes and cycle charges, so traces and stats are bit-identical with the
//! cache on or off.
//!
//! # Shootdown discipline
//!
//! Entries are tagged with a *generation* number owned by the space. Every
//! page-table mutation — `map_page`, `unmap_page`, protection changes, bulk
//! grants, space teardown — bumps the generation, which invalidates the whole
//! cache at once (a conservative full shootdown: cheap, and impossible to
//! get wrong per-entry). A cached entry is only consulted when its generation
//! matches, so a stale entry can never satisfy an access the page table would
//! fault. Because a generation-valid entry mirrors the current PTE exactly,
//! a write hit on a read-only entry can report the protection fault without
//! falling back to the page table.

use crate::phys::FrameId;

/// Number of slots in the direct-mapped cache. Must be a power of two.
/// 64 slots cover a 256KiB working set; the paper's workloads (64KiB–1.5MiB
/// streaming transfers) touch pages sequentially, so conflict misses are
/// rare even at this size.
const TLB_SLOTS: usize = 64;

/// Host-side hit/miss/shootdown counters for one space's TLB.
///
/// Purely observational: these never feed back into simulated behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations served from the cache.
    pub hits: u64,
    /// Translations that fell through to the page-table `HashMap`.
    pub misses: u64,
    /// Whole-cache invalidations (generation bumps).
    pub shootdowns: u64,
}

impl TlbStats {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &TlbStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.shootdowns += other.shootdowns;
    }
}

/// One cached translation: virtual page number → (frame, writable), valid
/// only while `gen` matches the owning space's current generation.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u32,
    frame: FrameId,
    writable: bool,
    gen: u64,
}

/// A direct-mapped, generation-tagged translation cache.
#[derive(Debug)]
pub struct Tlb {
    slots: Box<[Option<TlbEntry>; TLB_SLOTS]>,
    /// Current generation; entries from older generations are invalid.
    gen: u64,
    /// Counters, host-side only.
    pub stats: TlbStats,
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb {
            slots: Box::new([None; TLB_SLOTS]),
            // Start at 1 so a zeroed entry can never look valid.
            gen: 1,
            stats: TlbStats::default(),
        }
    }
}

impl Tlb {
    #[inline]
    fn slot(vpn: u32) -> usize {
        vpn as usize & (TLB_SLOTS - 1)
    }

    /// Look up `vpn`. Returns `Some((frame, writable))` on a generation-valid
    /// hit; the caller still checks `writable` against the access kind.
    #[inline]
    pub fn lookup(&mut self, vpn: u32) -> Option<(FrameId, bool)> {
        match self.slots[Self::slot(vpn)] {
            Some(e) if e.vpn == vpn && e.gen == self.gen => {
                self.stats.hits += 1;
                Some((e.frame, e.writable))
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Cache a translation fetched from the page table.
    #[inline]
    pub fn insert(&mut self, vpn: u32, frame: FrameId, writable: bool) {
        self.slots[Self::slot(vpn)] = Some(TlbEntry {
            vpn,
            frame,
            writable,
            gen: self.gen,
        });
    }

    /// Invalidate every entry (full shootdown) by bumping the generation.
    #[inline]
    pub fn shootdown(&mut self) {
        self.gen += 1;
        self.stats.shootdowns += 1;
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for TlbStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.shootdowns);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TlbStats {
            hits: r.u64()?,
            misses: r.u64()?,
            shootdowns: r.u64()?,
        })
    }
}

impl Snap for TlbEntry {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.vpn);
        w.u32(self.frame);
        w.bool(self.writable);
        w.u64(self.gen);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TlbEntry {
            vpn: r.u32()?,
            frame: r.u32()?,
            writable: r.bool()?,
            gen: r.u64()?,
        })
    }
}

// The cache contents are serialized in full (not just the generation):
// hit/miss counters depend on what is cached, and those counters must
// replay bit-identically for restored kernels to digest-match recordings.
impl Snap for Tlb {
    fn snap(&self, w: &mut SnapWriter) {
        for s in self.slots.iter() {
            s.snap(w);
        }
        w.u64(self.gen);
        self.stats.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut slots = Box::new([None; TLB_SLOTS]);
        for s in slots.iter_mut() {
            *s = Snap::restore(r)?;
        }
        Ok(Tlb {
            slots,
            gen: r.u64()?,
            stats: Snap::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::default();
        assert_eq!(t.lookup(5), None);
        t.insert(5, 9, true);
        assert_eq!(t.lookup(5), Some((9, true)));
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn shootdown_invalidates_everything() {
        let mut t = Tlb::default();
        t.insert(5, 9, true);
        t.insert(6, 10, false);
        t.shootdown();
        assert_eq!(t.lookup(5), None);
        assert_eq!(t.lookup(6), None);
        assert_eq!(t.stats.shootdowns, 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut t = Tlb::default();
        t.insert(1, 7, true);
        // Same slot (vpn ≡ 1 mod TLB_SLOTS) evicts the previous entry.
        t.insert(1 + TLB_SLOTS as u32, 8, true);
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.lookup(1 + TLB_SLOTS as u32), Some((8, true)));
    }

    #[test]
    fn read_only_entries_keep_writable_bit() {
        let mut t = Tlb::default();
        t.insert(3, 4, false);
        assert_eq!(t.lookup(3), Some((4, false)));
    }
}

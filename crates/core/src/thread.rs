//! Thread control blocks.
//!
//! The TCB holds the thread's user-visible registers (its complete
//! continuation, per the atomic API), its scheduling state, and its IPC
//! connection end. There is deliberately **no** saved kernel context: in
//! the interrupt model none exists, and in the process model the retained
//! kernel stack never contains state that matters across a block — the
//! registers are always written back first. This shared representation is
//! what lets one kernel source serve both execution models.

use std::sync::Arc;

use fluke_api::Sys;
use fluke_arch::cost::Cycles;
use fluke_arch::{Program, ProgramId, UserRegs};

use crate::ids::{ConnId, ObjId, SpaceId, ThreadId};
use crate::kstat::Stats;
use crate::waitq::WaitQueue;

/// Default scheduling priority for ordinary threads.
pub const DEFAULT_PRIORITY: u32 = 8;
/// Number of priority levels (0 = lowest).
pub const PRIORITY_LEVELS: u32 = 32;

/// Why a thread is blocked. This is kernel *bookkeeping*, not thread state:
/// every blocked thread's registers independently encode the call that will
/// re-establish the wait if the thread is rolled back, restored or migrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// Queued on a mutex.
    Mutex(ObjId),
    /// Queued on a condition variable.
    Cond(ObjId),
    /// Server waiting for a connection on a port.
    PortWait(ObjId),
    /// Server waiting for a connection on a portset.
    PsetWait(ObjId),
    /// Client waiting for a server to accept its connection.
    IpcConnect(ObjId),
    /// IPC sender waiting for the receiver to provide a window.
    IpcSend(ConnId),
    /// IPC receiver waiting for the sender to provide data.
    IpcReceive(ConnId),
    /// One-way sender waiting for a receiver on a port.
    OnewaySend(ObjId),
    /// One-way receiver waiting for a sender on a port.
    OnewayReceive(ObjId),
    /// Waiting for a user-level pager to service a hard page fault.
    PagerReply(ConnId),
    /// Waiting for another thread to halt (`thread_wait`).
    Join(ThreadId),
    /// Sleeping until interrupted or woken (`thread_sleep`).
    Sleep,
    /// Waiting for a space to run out of threads (`space_wait_threads`).
    SpaceIdle(SpaceId),
    /// Donated the CPU to another thread (`sched_donate`).
    Donate(ThreadId),
}

/// Critical-path class of a wait: which `kspan` decomposition bucket
/// cycles spent blocked for a [`WaitReason`] belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Lock wait: mutex and condition-variable queues.
    Lock,
    /// Blocked on IPC: connections, ports, portsets, pager replies.
    Ipc,
    /// CPU donated away (`sched_donate`) — runnable-wait, not blocking.
    CpuDonate,
    /// Other blocking: sleep, join, space-idle.
    Other,
}

impl WaitReason {
    /// The `kspan` critical-path bucket for cycles spent in this wait.
    pub fn wait_class(self) -> WaitClass {
        match self {
            WaitReason::Mutex(_) | WaitReason::Cond(_) => WaitClass::Lock,
            WaitReason::PortWait(_)
            | WaitReason::PsetWait(_)
            | WaitReason::IpcConnect(_)
            | WaitReason::IpcSend(_)
            | WaitReason::IpcReceive(_)
            | WaitReason::OnewaySend(_)
            | WaitReason::OnewayReceive(_)
            | WaitReason::PagerReply(_) => WaitClass::Ipc,
            WaitReason::Donate(_) => WaitClass::CpuDonate,
            WaitReason::Join(_) | WaitReason::Sleep | WaitReason::SpaceIdle(_) => WaitClass::Other,
        }
    }

    /// The specific object this wait contends on, as a stable
    /// `(kind, index)` pair for `kernel.contention.*` attribution
    /// (`None` for plain sleeps, which wait on nothing).
    pub fn contended_object(self) -> Option<(&'static str, u32)> {
        match self {
            WaitReason::Mutex(o) => Some(("mutex", o.0)),
            WaitReason::Cond(o) => Some(("cond", o.0)),
            WaitReason::PortWait(o)
            | WaitReason::OnewaySend(o)
            | WaitReason::OnewayReceive(o)
            | WaitReason::IpcConnect(o) => Some(("port", o.0)),
            WaitReason::PsetWait(o) => Some(("pset", o.0)),
            WaitReason::IpcSend(c) | WaitReason::IpcReceive(c) | WaitReason::PagerReply(c) => {
                Some(("conn", c.0))
            }
            WaitReason::Join(t) | WaitReason::Donate(t) => Some(("thread", t.0)),
            WaitReason::SpaceIdle(s) => Some(("space", s.0)),
            WaitReason::Sleep => None,
        }
    }
}

/// A thread's run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Created but not yet started (or explicitly stopped).
    Stopped,
    /// On a ready queue.
    Ready,
    /// Executing on the given CPU.
    Running(usize),
    /// Blocked for the given reason.
    Blocked(WaitReason),
    /// Exited.
    Halted,
}

/// What a native (in-kernel) thread body does when dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeAction {
    /// Charge `work` cycles, then block until explicitly woken.
    BlockUntilWoken {
        /// Simulated cycles of work performed this activation.
        work: Cycles,
    },
    /// Charge `work` cycles, then halt.
    Halt {
        /// Simulated cycles of work performed this activation.
        work: Cycles,
    },
}

/// Body of a kernel-internal thread (e.g. the Table 6 latency probe).
///
/// Native threads stand in for the paper's "high-priority kernel thread";
/// they are scheduling entities but have no exportable user state.
pub trait NativeBody: std::fmt::Debug {
    /// Invoked when the scheduler dispatches the thread. `woken_at` is the
    /// simulated time the thread was made runnable; `now` the dispatch time.
    fn on_dispatch(&mut self, woken_at: Cycles, now: Cycles, stats: &mut Stats) -> NativeAction;
}

/// What a thread executes.
pub enum Body {
    /// An ordinary user-mode thread running a program image.
    User,
    /// A kernel-internal native thread.
    Native(Box<dyn NativeBody>),
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::User => write!(f, "User"),
            Body::Native(_) => write!(f, "Native"),
        }
    }
}

/// The IPC role of a connection end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcRole {
    /// Client side (initiated the connection).
    Client,
    /// Server side (accepted from a port).
    Server,
}

/// A thread's IPC connection end, kept in the TCB (paper §4.3: "The IPC
/// connection state itself is stored as part of the current thread's
/// control block").
#[derive(Debug, Clone, Copy, Default)]
pub struct IpcEnd {
    /// The live connection, if any.
    pub conn: Option<ConnId>,
    /// This thread's role on that connection.
    pub role: Option<IpcRole>,
}

/// A thread control block.
#[derive(Debug)]
pub struct Thread {
    /// This thread's id.
    pub id: ThreadId,
    /// Its object-table entry (None for loader-created native threads).
    pub obj: Option<ObjId>,
    /// The space the thread executes in.
    pub space: Option<SpaceId>,
    /// The handle by which the space was last named in a state frame
    /// (exported verbatim in `ThreadStateFrame::space_token`).
    pub space_token: u32,
    /// The program image (user threads).
    pub program: Option<ProgramId>,
    /// Cached program text (kept in sync with `program`).
    pub text: Option<Arc<Program>>,
    /// The user-visible register file — the thread's entire continuation.
    pub regs: UserRegs,
    /// Scheduling priority (higher runs first).
    pub priority: u32,
    /// Home processor for the fine-grained multiprocessor scheduler:
    /// the CPU whose ready queue this thread is enqueued on. Assigned
    /// round-robin at creation, re-pinned to the CPU the thread last ran
    /// on at every dispatch (and to the thief on a successful steal).
    /// Always 0 on a uniprocessor.
    pub home_cpu: usize,
    /// Run state.
    pub state: RunState,
    /// User or native body.
    pub body: Body,
    /// IPC connection end.
    pub ipc: IpcEnd,
    /// The syscall the thread is in the middle of (blocked or preempted),
    /// for restart/rollback accounting. `None` when running user code.
    pub inflight: Option<Sys>,
    /// Set when the thread was preempted *inside* the kernel in the process
    /// model: its kernel stack is retained, so the next dispatch skips
    /// entry/preamble charges instead of restarting from scratch.
    pub kstack_retained: bool,
    /// Pending `thread_interrupt` not yet consumed.
    pub interrupted: bool,
    /// Set when the thread's current blocking operation was alerted by its
    /// IPC peer.
    pub ipc_alerted: bool,
    /// A disconnect/teardown hit this thread between its unblocking and its
    /// next dispatch; the pending error is delivered by the next IPC
    /// entrypoint.
    pub ipc_error: Option<fluke_api::ErrorCode>,
    /// Simulated time the thread was last made runnable (for latency and
    /// the native probe).
    pub woken_at: Cycles,
    /// Simulated time of the last *timer event* that made the thread
    /// runnable, pending consumption by the next dispatch (the `kprof`
    /// preemption-latency probe). Written unconditionally on timer wakes
    /// and cleared at dispatch, so enabling `kprof` changes nothing
    /// simulated; 0 means no event pending.
    pub wake_pending: Cycles,
    /// Index into `Stats::fault_records` of the fault this thread is
    /// currently having remedied (for Table 3 attribution).
    pub open_fault: Option<usize>,
    /// Accumulated user-mode cycles (per-thread accounting).
    pub user_cycles: Cycles,
    /// Threads blocked in `thread_wait` on this thread.
    pub joiners: WaitQueue<ThreadId>,
    /// Threads blocked in `sched_donate` with this thread as donee (they
    /// wake when it halts). Explicit bookkeeping so the halt path never
    /// scans the thread arena.
    pub donors: WaitQueue<ThreadId>,
}

impl Thread {
    /// Create a stopped user thread with zeroed registers.
    pub fn new_user(id: ThreadId) -> Self {
        Thread {
            id,
            obj: None,
            space: None,
            space_token: 0,
            program: None,
            text: None,
            regs: UserRegs::new(),
            priority: DEFAULT_PRIORITY,
            home_cpu: 0,
            state: RunState::Stopped,
            body: Body::User,
            ipc: IpcEnd::default(),
            inflight: None,
            kstack_retained: false,
            interrupted: false,
            ipc_alerted: false,
            ipc_error: None,
            woken_at: 0,
            wake_pending: 0,
            open_fault: None,
            user_cycles: 0,
            joiners: WaitQueue::new(),
            donors: WaitQueue::new(),
        }
    }

    /// Create a native (kernel-internal) thread.
    pub fn new_native(id: ThreadId, priority: u32, body: Box<dyn NativeBody>) -> Self {
        let mut t = Self::new_user(id);
        t.priority = priority;
        t.body = Body::Native(body);
        t
    }

    /// Whether the thread can be placed on a ready queue.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, RunState::Ready)
    }

    /// Whether the thread has exited.
    pub fn is_halted(&self) -> bool {
        matches!(self.state, RunState::Halted)
    }

    /// Whether the thread is blocked.
    pub fn is_blocked(&self) -> bool {
        matches!(self.state, RunState::Blocked(_))
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for IpcRole {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            IpcRole::Client => 0,
            IpcRole::Server => 1,
        });
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(IpcRole::Client),
            1 => Ok(IpcRole::Server),
            t => Err(SnapError::BadTag {
                what: "IpcRole",
                tag: t as u32,
            }),
        }
    }
}

impl Snap for IpcEnd {
    fn snap(&self, w: &mut SnapWriter) {
        self.conn.snap(w);
        self.role.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(IpcEnd {
            conn: Snap::restore(r)?,
            role: Snap::restore(r)?,
        })
    }
}

impl Snap for WaitReason {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            WaitReason::Mutex(o) => {
                w.u8(0);
                o.snap(w);
            }
            WaitReason::Cond(o) => {
                w.u8(1);
                o.snap(w);
            }
            WaitReason::PortWait(o) => {
                w.u8(2);
                o.snap(w);
            }
            WaitReason::PsetWait(o) => {
                w.u8(3);
                o.snap(w);
            }
            WaitReason::IpcConnect(o) => {
                w.u8(4);
                o.snap(w);
            }
            WaitReason::IpcSend(c) => {
                w.u8(5);
                c.snap(w);
            }
            WaitReason::IpcReceive(c) => {
                w.u8(6);
                c.snap(w);
            }
            WaitReason::OnewaySend(o) => {
                w.u8(7);
                o.snap(w);
            }
            WaitReason::OnewayReceive(o) => {
                w.u8(8);
                o.snap(w);
            }
            WaitReason::PagerReply(c) => {
                w.u8(9);
                c.snap(w);
            }
            WaitReason::Join(t) => {
                w.u8(10);
                t.snap(w);
            }
            WaitReason::Sleep => w.u8(11),
            WaitReason::SpaceIdle(s) => {
                w.u8(12);
                s.snap(w);
            }
            WaitReason::Donate(t) => {
                w.u8(13);
                t.snap(w);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => WaitReason::Mutex(Snap::restore(r)?),
            1 => WaitReason::Cond(Snap::restore(r)?),
            2 => WaitReason::PortWait(Snap::restore(r)?),
            3 => WaitReason::PsetWait(Snap::restore(r)?),
            4 => WaitReason::IpcConnect(Snap::restore(r)?),
            5 => WaitReason::IpcSend(Snap::restore(r)?),
            6 => WaitReason::IpcReceive(Snap::restore(r)?),
            7 => WaitReason::OnewaySend(Snap::restore(r)?),
            8 => WaitReason::OnewayReceive(Snap::restore(r)?),
            9 => WaitReason::PagerReply(Snap::restore(r)?),
            10 => WaitReason::Join(Snap::restore(r)?),
            11 => WaitReason::Sleep,
            12 => WaitReason::SpaceIdle(Snap::restore(r)?),
            13 => WaitReason::Donate(Snap::restore(r)?),
            t => {
                return Err(SnapError::BadTag {
                    what: "WaitReason",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for RunState {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            RunState::Stopped => w.u8(0),
            RunState::Ready => w.u8(1),
            RunState::Running(cpu) => {
                w.u8(2);
                w.usize(cpu);
            }
            RunState::Blocked(reason) => {
                w.u8(3);
                reason.snap(w);
            }
            RunState::Halted => w.u8(4),
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => RunState::Stopped,
            1 => RunState::Ready,
            2 => RunState::Running(r.usize()?),
            3 => RunState::Blocked(Snap::restore(r)?),
            4 => RunState::Halted,
            t => {
                return Err(SnapError::BadTag {
                    what: "RunState",
                    tag: t as u32,
                })
            }
        })
    }
}

// Native bodies hold arbitrary host closures and cannot be serialized;
// snapshotting a kernel with a live native thread is a `NativeBody` error.
// The cached `text` Arc is derived from `program` and re-resolved against
// the kernel's program table after the whole kernel body is decoded.
impl Snap for Thread {
    fn snap(&self, w: &mut SnapWriter) {
        self.id.snap(w);
        self.obj.snap(w);
        self.space.snap(w);
        w.u32(self.space_token);
        self.program.snap(w);
        self.regs.snap(w);
        w.u32(self.priority);
        w.usize(self.home_cpu);
        self.state.snap(w);
        self.ipc.snap(w);
        self.inflight.snap(w);
        w.bool(self.kstack_retained);
        w.bool(self.interrupted);
        w.bool(self.ipc_alerted);
        self.ipc_error.snap(w);
        w.u64(self.woken_at);
        w.u64(self.wake_pending);
        self.open_fault.snap(w);
        w.u64(self.user_cycles);
        self.joiners.snap(w);
        self.donors.snap(w);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Thread {
            id: Snap::restore(r)?,
            obj: Snap::restore(r)?,
            space: Snap::restore(r)?,
            space_token: r.u32()?,
            program: Snap::restore(r)?,
            text: None, // re-resolved from `program` by the kernel decoder
            regs: Snap::restore(r)?,
            priority: r.u32()?,
            home_cpu: r.usize()?,
            state: Snap::restore(r)?,
            body: Body::User,
            ipc: Snap::restore(r)?,
            inflight: Snap::restore(r)?,
            kstack_retained: r.bool()?,
            interrupted: r.bool()?,
            ipc_alerted: r.bool()?,
            ipc_error: Snap::restore(r)?,
            woken_at: r.u64()?,
            wake_pending: r.u64()?,
            open_fault: Snap::restore(r)?,
            user_cycles: r.u64()?,
            joiners: Snap::restore(r)?,
            donors: Snap::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_user_thread_is_stopped_and_clean() {
        let t = Thread::new_user(ThreadId(1));
        assert_eq!(t.state, RunState::Stopped);
        assert_eq!(t.priority, DEFAULT_PRIORITY);
        assert!(t.inflight.is_none());
        assert!(!t.is_ready());
        assert!(!t.is_halted());
        assert!(!t.is_blocked());
    }

    #[derive(Debug)]
    struct Probe;
    impl NativeBody for Probe {
        fn on_dispatch(&mut self, _w: Cycles, _n: Cycles, _s: &mut Stats) -> NativeAction {
            NativeAction::BlockUntilWoken { work: 10 }
        }
    }

    #[test]
    fn native_thread_carries_priority_and_body() {
        let t = Thread::new_native(ThreadId(2), 20, Box::new(Probe));
        assert_eq!(t.priority, 20);
        assert!(matches!(t.body, Body::Native(_)));
    }

    #[test]
    fn run_state_predicates() {
        let mut t = Thread::new_user(ThreadId(0));
        t.state = RunState::Blocked(WaitReason::Sleep);
        assert!(t.is_blocked());
        t.state = RunState::Halted;
        assert!(t.is_halted());
        t.state = RunState::Ready;
        assert!(t.is_ready());
    }
}

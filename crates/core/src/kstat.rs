//! `kstat`: kernel statistics and the unified metrics registry.
//!
//! Two layers live here:
//!
//! 1. [`Stats`] — the *live* counters the kernel increments on its hot
//!    paths. Every number the paper's tables report is derived from these
//!    fields; there is exactly one live counter per fact (the former
//!    `stats.rs` surface, absorbed whole).
//! 2. [`KstatRegistry`] — a deterministic, on-demand *snapshot* of every
//!    observable kernel metric under one hierarchical dot-separated
//!    namespace (`kernel.tlb.hits`, `kernel.syscall.<entrypoint>.count`,
//!    `kernel.mem.kstacks_bytes`, …), in the spirit of Solaris `kstat`.
//!    [`Kernel::kstat`] builds it by *reading* the single live sources —
//!    [`Stats`], the software-TLB view ([`Kernel::tlb_stats`]), the
//!    atomicity auditor's per-entrypoint hit counters
//!    ([`crate::kernel::block_audit_hits`]), the live-thread memory
//!    gauges ([`Kernel::mem_gauges`]), the tracer, and the `kprof`
//!    profiler — so nothing is double-counted and the hot paths never
//!    touch a string or a hash map.
//!
//! Registry names obey the `[a-z0-9_.]+` grammar, are unique, and every
//! name is an instance of a static *pattern* (`<entrypoint>` standing for
//! a syscall name) listed in the DESIGN.md §13 metrics inventory; a
//! hygiene test parses the doc so the inventory cannot rot. Snapshots are
//! `BTreeMap`-ordered, so the JSON and text exports are bit-deterministic.

use std::collections::BTreeMap;

use fluke_api::{Sys, SYSCALLS, SYSCALL_COUNT};
use fluke_arch::cost::{cycles_to_us, Cycles};
use fluke_json::Json;

use crate::kernel::{block_audit_hits, Kernel};
use crate::tlb::TlbStats;
use crate::trace::Histogram;

/// Which side of an IPC transfer a fault occurred on (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSide {
    /// The fault was in the client's address space.
    Client,
    /// The fault was in the server's address space.
    Server,
    /// The fault was outside any IPC transfer.
    Other,
}

/// Fault severity (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The kernel derived a page-table entry from an entry higher in the
    /// memory mapping hierarchy.
    Soft,
    /// An RPC to a user-level memory manager was required.
    Hard,
}

/// One fault event during the run, with its measured costs.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// Side of the transfer the faulting address belonged to.
    pub side: FaultSide,
    /// Soft or hard.
    pub kind: FaultKind,
    /// Cycles spent servicing the fault (hierarchy walk, or the full pager
    /// round trip for hard faults).
    pub remedy_cycles: Cycles,
    /// Cycles of previously-done work thrown away and re-executed because
    /// the operation rolled back to its register continuation.
    pub rollback_cycles: Cycles,
    /// Whether the fault interrupted an IPC transfer.
    pub during_ipc: bool,
    /// Simulated time the fault was raised.
    pub at: Cycles,
}

/// Per-entrypoint dispatch counts, indexed by [`Sys::num`]. One slot per
/// entrypoint, allocated up front: the hot-path increment is an array
/// store, never a map lookup.
#[derive(Debug, Clone)]
pub struct PerSysCounts(Vec<u64>);

impl Default for PerSysCounts {
    fn default() -> Self {
        PerSysCounts(vec![0; SYSCALL_COUNT])
    }
}

impl PerSysCounts {
    /// Count one dispatch of `sys`.
    #[inline]
    pub fn bump(&mut self, sys: Sys) {
        self.0[sys.num() as usize] += 1;
    }

    /// Dispatches of `sys` so far.
    pub fn get(&self, sys: Sys) -> u64 {
        self.0[sys.num() as usize]
    }

    /// Total dispatches across all entrypoints.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// Aggregated kernel statistics for one run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Total system calls dispatched (including restarts).
    pub syscalls: u64,
    /// System call restarts after a block, fault or preemption.
    pub restarts: u64,
    /// Per-entrypoint dispatch counts (`kernel.syscall.<entrypoint>.count`).
    pub per_sys: PerSysCounts,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Address-space switches performed.
    pub space_switches: u64,
    /// Soft page faults resolved.
    pub soft_faults: u64,
    /// Hard page faults (pager RPCs) raised.
    pub hard_faults: u64,
    /// Fatal (unresolvable) faults.
    pub fatal_faults: u64,
    /// `kfault` adversarial injections fired, indexed by
    /// [`crate::kfault::KfaultKind::index`] (all zero unless armed).
    pub faults_injected: [u64; 4],
    /// Cycles spent executing user-mode instructions.
    pub user_cycles: Cycles,
    /// Cycles spent in the kernel.
    pub kernel_cycles: Cycles,
    /// Cycles the CPU sat idle waiting for an event.
    pub idle_cycles: Cycles,
    /// Cycles spent re-executing rolled-back work.
    pub rollback_cycles: Cycles,
    /// Cycles spent acquiring/releasing kernel locks (Full preemption).
    pub klock_cycles: Cycles,
    /// The *waiting* part of [`Stats::klock_cycles`]: cycles stalled on a
    /// lock another CPU held, excluding the fixed acquire/release costs.
    /// Near zero under fine-grained locking; dominant under the big lock.
    pub klock_wait_cycles: Cycles,
    /// Bytes moved by the IPC copy path.
    pub ipc_bytes: u64,
    /// IPC messages completed.
    pub ipc_messages: u64,
    /// Explicit preemption points taken on the IPC copy path.
    pub preempt_points_taken: u64,
    /// In-kernel preemptions (Full preemption configuration).
    pub kernel_preemptions: u64,
    /// Preemptions of user-mode execution.
    pub user_preemptions: u64,
    /// Latency-probe observations: cycles from wakeup to dispatch,
    /// aggregated into a constant-memory histogram (exact count/sum/max;
    /// log-linear percentiles for Table 6's p50/p95/p99 columns).
    pub probe_hist: Histogram,
    /// Times the latency probe ran.
    pub probe_runs: u64,
    /// Times the probe was still pending when its next period arrived.
    pub probe_misses: u64,
    /// Every fault, with measured remedy/rollback costs (Table 3).
    pub fault_records: Vec<FaultRecord>,
    /// Current kernel memory charged for thread management (TCBs + stacks).
    pub thread_kmem: u64,
    /// Peak of [`Stats::thread_kmem`] over the run.
    pub thread_kmem_peak: u64,
    /// Threads created over the run.
    pub threads_created: u64,
    /// Kernel objects created over the run.
    pub objects_created: u64,
    /// Values logged by the `sys_trace` entrypoint (a test/debug channel).
    pub trace_log: Vec<u32>,
    /// Software-TLB counters retired from destroyed spaces (host-side
    /// observability only; live spaces' counters are added on top by
    /// [`crate::Kernel::tlb_stats`]).
    pub tlb_retired: TlbStats,
    /// Enqueues onto the fine-grained per-CPU ready queues (zero under
    /// the legacy `big_lock` scheduler).
    pub sched_pushes: u64,
    /// Threads stolen from another CPU's ready queue.
    pub sched_steals: u64,
    /// Steal sweeps attempted by an idle CPU (counted even when every
    /// other queue was empty).
    pub sched_steal_attempts: u64,
    /// Cross-CPU reschedule IPIs requested by priority wakeups.
    pub sched_ipis: u64,
    /// Cycles spent waiting on a contended per-CPU run-queue lock.
    pub runq_wait_cycles: Cycles,
    /// Contended run-queue lock acquisitions.
    pub runq_waits: u64,
    /// Cross-CPU TLB-shootdown IPIs delivered (one per remote CPU with
    /// the mutated space loaded).
    pub tlb_shootdown_ipis: u64,
    /// Total cycles consumed by TLB shootdowns: IPI sends on the
    /// initiating CPU plus ack/invalidate work on the remotes.
    pub tlb_shootdown_cycles: Cycles,
    /// Unified wait-queue operation counters (`kernel.waitq.*`), aggregated
    /// across every queue in the kernel. Host-side observability only.
    pub waitq: crate::waitq::WaitqStats,
    /// Port-handle resolutions through the shared port-namespace lookup
    /// (`kernel.port.index.lookups`).
    pub port_lookups: u64,
    /// Port lookups that chased a cross-space `Ref` indirection
    /// (`kernel.port.index.ref_chases`).
    pub port_ref_chases: u64,
    /// Connection unlinks from a port's connect queue that took the O(1)
    /// indexed path (`kernel.port.index.unlinks_fast`).
    pub conn_unlinks_fast: u64,
    /// Connection unlinks that took the linear reference path — the
    /// `port_index = false` differential oracle
    /// (`kernel.port.index.unlinks_linear`).
    pub conn_unlinks_linear: u64,
    /// One-way messages buffered in the kernel by the batched-submission
    /// path (`kernel.ipc.submit.buffered`).
    pub ipc_submit_buffered: u64,
    /// Descriptor operations completed by `ipc_submit`
    /// (`kernel.ipc.submit.ops`).
    pub ipc_submit_ops: u64,
    /// `ipc_submit` batches fully completed in one return
    /// (`kernel.ipc.submit.batches`).
    pub ipc_submit_batches: u64,
}

impl Stats {
    /// Record a change in thread-management kernel memory.
    pub fn kmem_delta(&mut self, delta: i64) {
        self.thread_kmem = self.thread_kmem.saturating_add_signed(delta);
        self.thread_kmem_peak = self.thread_kmem_peak.max(self.thread_kmem);
    }

    /// Average probe latency in microseconds (Table 6 "avg"). Exact: the
    /// histogram keeps the true count and sum.
    pub fn probe_avg_us(&self) -> f64 {
        if self.probe_hist.is_empty() {
            return 0.0;
        }
        cycles_to_us(self.probe_hist.sum()) / self.probe_hist.count() as f64
    }

    /// Maximum probe latency in microseconds (Table 6 "max"). Exact.
    pub fn probe_max_us(&self) -> f64 {
        cycles_to_us(self.probe_hist.max())
    }

    /// A probe-latency percentile in microseconds (Table 6 p50/p95/p99).
    /// Within the histogram's ~3% bucket error.
    pub fn probe_percentile_us(&self, p: f64) -> f64 {
        cycles_to_us(self.probe_hist.percentile(p))
    }

    /// Total busy (non-idle) cycles.
    pub fn busy_cycles(&self) -> Cycles {
        self.user_cycles + self.kernel_cycles
    }
}

/// Live kernel-memory gauges for thread management, computed from the
/// thread table on demand (Table 7 as a time series). These are *views*:
/// the only live counter behind them is the thread table itself plus the
/// aggregate [`Stats::thread_kmem`], which the invariant
/// `tcb_bytes + kstacks_bytes == thread_kmem` ties together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemGauges {
    /// Live (non-halted) threads.
    pub live_threads: u64,
    /// Bytes of thread control blocks charged (interrupt model; the
    /// process model folds the TCB into the stack page, Table 7).
    pub tcb_bytes: u64,
    /// Bytes of per-thread kernel stacks charged (process model).
    pub kstacks_bytes: u64,
    /// Bytes of kernel stacks *retained* across an in-kernel preemption
    /// (process model only; always 0 under the interrupt model).
    pub retained_kstack_bytes: u64,
}

/// The value of one registered metric.
#[derive(Debug, Clone)]
pub enum KstatValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level (can go up and down).
    Gauge(u64),
    /// A log-linear latency histogram (the PR-1 [`Histogram`]).
    Hist(Histogram),
}

impl KstatValue {
    /// The kind name used by the text and JSON exports.
    pub fn kind(&self) -> &'static str {
        match self {
            KstatValue::Counter(_) => "counter",
            KstatValue::Gauge(_) => "gauge",
            KstatValue::Hist(_) => "hist",
        }
    }

    /// Scalar payload for counters and gauges (`None` for histograms).
    pub fn scalar(&self) -> Option<u64> {
        match self {
            KstatValue::Counter(v) | KstatValue::Gauge(v) => Some(*v),
            KstatValue::Hist(_) => None,
        }
    }
}

/// One registry entry: the metric's value plus the static inventory
/// pattern it instantiates (`kernel.syscall.<entrypoint>.count` for the
/// per-entrypoint families; identical to the name for singletons).
#[derive(Debug, Clone)]
pub struct KstatEntry {
    /// The DESIGN.md §13 inventory pattern this name instantiates.
    pub pattern: &'static str,
    /// The snapshotted value.
    pub value: KstatValue,
}

/// A deterministic snapshot of every kernel metric, keyed by full
/// dot-separated name. Built on demand by [`Kernel::kstat`]; never held
/// live, so registering costs the hot paths nothing.
#[derive(Debug, Clone, Default)]
pub struct KstatRegistry {
    entries: BTreeMap<String, KstatEntry>,
}

/// True iff `name` matches the registry grammar `[a-z0-9_.]+`.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'.')
}

impl KstatRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, name: String, pattern: &'static str, value: KstatValue) {
        assert!(
            valid_name(&name),
            "kstat name {name:?} violates [a-z0-9_.]+"
        );
        let dup = self
            .entries
            .insert(name.clone(), KstatEntry { pattern, value });
        assert!(dup.is_none(), "duplicate kstat name {name:?}");
    }

    /// Register a counter. `name` doubles as its inventory pattern.
    pub fn counter(&mut self, name: &'static str, v: u64) {
        self.insert(name.to_string(), name, KstatValue::Counter(v));
    }

    /// Register a gauge. `name` doubles as its inventory pattern.
    pub fn gauge(&mut self, name: &'static str, v: u64) {
        self.insert(name.to_string(), name, KstatValue::Gauge(v));
    }

    /// Register a histogram. `name` doubles as its inventory pattern.
    pub fn hist(&mut self, name: &'static str, h: Histogram) {
        self.insert(name.to_string(), name, KstatValue::Hist(h));
    }

    /// Register one member of a per-entrypoint counter family: `name` is
    /// the concrete instance, `pattern` the inventory row it belongs to.
    pub fn family_counter(&mut self, name: String, pattern: &'static str, v: u64) {
        self.insert(name, pattern, KstatValue::Counter(v));
    }

    /// All entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &KstatEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a metric by full name.
    pub fn get(&self, name: &str) -> Option<&KstatValue> {
        self.entries.get(name).map(|e| &e.value)
    }

    /// Scalar value of a counter/gauge metric (`None` if absent or a
    /// histogram).
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(|v| v.scalar())
    }

    /// The flat text dump: one `name kind value` line per metric, sorted.
    /// With `include_zeros` false, zero-valued counters/gauges and empty
    /// histograms are elided (the dashboard view).
    pub fn dump_text(&self, include_zeros: bool) -> String {
        let mut out = String::new();
        for (name, e) in &self.entries {
            match &e.value {
                KstatValue::Counter(v) | KstatValue::Gauge(v) => {
                    if *v == 0 && !include_zeros {
                        continue;
                    }
                    out.push_str(&format!("{name} {} {v}\n", e.value.kind()));
                }
                KstatValue::Hist(h) => {
                    if h.is_empty() && !include_zeros {
                        continue;
                    }
                    out.push_str(&format!(
                        "{name} hist count={} sum={} min={} max={} p50={} p95={} p99={}\n",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.percentile(50.0),
                        h.percentile(95.0),
                        h.percentile(99.0),
                    ));
                }
            }
        }
        out
    }

    /// Export as a nested JSON tree: each dot segment becomes an object
    /// level, each leaf an object with `kind` and its payload. Key order
    /// is deterministic ([`Json::Obj`] is a `BTreeMap`).
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        for (name, e) in &self.entries {
            let leaf = match &e.value {
                KstatValue::Counter(v) | KstatValue::Gauge(v) => {
                    let mut o = Json::obj();
                    o.set("kind", Json::Str(e.value.kind().to_string()));
                    o.set("value", Json::from_u64(*v));
                    o
                }
                KstatValue::Hist(h) => {
                    let mut o = Json::obj();
                    o.set("kind", Json::Str("hist".to_string()));
                    o.set("count", Json::from_u64(h.count()));
                    o.set("sum", Json::from_u64(h.sum()));
                    o.set("min", Json::from_u64(h.min()));
                    o.set("max", Json::from_u64(h.max()));
                    o.set("p50", Json::from_u64(h.percentile(50.0)));
                    o.set("p95", Json::from_u64(h.percentile(95.0)));
                    o.set("p99", Json::from_u64(h.percentile(99.0)));
                    o
                }
            };
            // Walk/create the object spine for all but the last segment.
            let segs: Vec<&str> = name.split('.').collect();
            let mut node = &mut root;
            for s in &segs[..segs.len() - 1] {
                if node.get(s).is_none() {
                    node.set(s, Json::obj());
                }
                let Json::Obj(m) = node else { unreachable!() };
                node = m.get_mut(*s).expect("just inserted");
            }
            node.set(segs[segs.len() - 1], leaf);
        }
        root
    }
}

impl Kernel {
    /// Live kernel-memory gauges, computed from the thread table (see
    /// [`MemGauges`]).
    pub fn mem_gauges(&self) -> MemGauges {
        let mut g = MemGauges::default();
        for (_, th) in self.threads.iter() {
            if th.is_halted() {
                continue;
            }
            g.live_threads += 1;
            match self.cfg.model {
                crate::config::ExecModel::Process => {
                    g.kstacks_bytes += self.cfg.kstack_bytes as u64;
                    if th.kstack_retained {
                        g.retained_kstack_bytes += self.cfg.kstack_bytes as u64;
                    }
                }
                crate::config::ExecModel::Interrupt => g.tcb_bytes += self.cfg.tcb_bytes as u64,
            }
        }
        g
    }

    /// Snapshot every kernel metric into a [`KstatRegistry`].
    ///
    /// The registry is a pure *view*: each entry is read from its single
    /// live source (see the module docs), so building it perturbs nothing
    /// and two snapshots of identical kernels are identical.
    pub fn kstat(&self) -> KstatRegistry {
        let mut r = KstatRegistry::new();
        let s = &self.stats;

        r.counter("kernel.syscall.count", s.syscalls);
        r.counter("kernel.syscall.restarts", s.restarts);
        for d in SYSCALLS {
            let n = s.per_sys.get(d.sys);
            if n > 0 {
                r.family_counter(
                    format!("kernel.syscall.{}.count", d.sys.name()),
                    "kernel.syscall.<entrypoint>.count",
                    n,
                );
            }
            // Process-wide auditor hits (accumulated across every kernel
            // this process built — the coverage view, not a per-run one).
            let hits = block_audit_hits(d.sys);
            if hits > 0 {
                r.family_counter(
                    format!("kernel.syscall.{}.audit_blocks", d.sys.name()),
                    "kernel.syscall.<entrypoint>.audit_blocks",
                    hits,
                );
            }
        }

        r.counter("kernel.sched.ctx_switches", s.ctx_switches);
        r.counter("kernel.sched.space_switches", s.space_switches);
        r.counter("kernel.sched.user_preemptions", s.user_preemptions);
        r.counter("kernel.sched.kernel_preemptions", s.kernel_preemptions);
        r.counter("kernel.sched.preempt_points_taken", s.preempt_points_taken);
        r.counter("kernel.sched.percpu.pushes", s.sched_pushes);
        r.counter("kernel.sched.percpu.steals", s.sched_steals);
        r.counter("kernel.sched.percpu.steal_attempts", s.sched_steal_attempts);
        r.counter("kernel.sched.percpu.ipis", s.sched_ipis);
        r.counter("kernel.contention.runq.wait_cycles", s.runq_wait_cycles);
        r.counter("kernel.contention.runq.waits", s.runq_waits);

        r.counter("kernel.fault.soft", s.soft_faults);
        r.counter("kernel.fault.hard", s.hard_faults);
        r.counter("kernel.fault.fatal", s.fatal_faults);
        r.counter("kernel.fault.injected.timer", s.faults_injected[0]);
        r.counter(
            "kernel.fault.injected.extract_restore",
            s.faults_injected[1],
        );
        r.counter("kernel.fault.injected.page_flush", s.faults_injected[2]);
        r.counter("kernel.fault.injected.transient", s.faults_injected[3]);

        r.counter("kernel.cycles.user", s.user_cycles);
        r.counter("kernel.cycles.kernel", s.kernel_cycles);
        r.counter("kernel.cycles.idle", s.idle_cycles);
        r.counter("kernel.cycles.rollback", s.rollback_cycles);
        r.counter("kernel.cycles.klock", s.klock_cycles);
        r.counter("kernel.cycles.klock_wait", s.klock_wait_cycles);

        r.counter("kernel.ipc.bytes", s.ipc_bytes);
        r.counter("kernel.ipc.messages", s.ipc_messages);
        r.counter("kernel.ipc.submit.buffered", s.ipc_submit_buffered);
        r.counter("kernel.ipc.submit.ops", s.ipc_submit_ops);
        r.counter("kernel.ipc.submit.batches", s.ipc_submit_batches);

        r.counter("kernel.waitq.enqueues", s.waitq.enqueues);
        r.counter("kernel.waitq.requeues", s.waitq.requeues);
        r.counter("kernel.waitq.wakes", s.waitq.wakes);
        r.counter("kernel.waitq.wake_alls", s.waitq.wake_alls);
        r.counter("kernel.waitq.cancels", s.waitq.cancels);
        r.counter("kernel.waitq.cancels_linear", s.waitq.cancels_linear);
        r.counter(
            "kernel.waitq.tombstones_skipped",
            s.waitq.tombstones_skipped,
        );
        r.counter("kernel.waitq.compactions", s.waitq.compactions);

        r.counter("kernel.port.index.lookups", s.port_lookups);
        r.counter("kernel.port.index.ref_chases", s.port_ref_chases);
        r.counter("kernel.port.index.unlinks_fast", s.conn_unlinks_fast);
        r.counter("kernel.port.index.unlinks_linear", s.conn_unlinks_linear);

        let tlb = self.tlb_stats();
        r.counter("kernel.tlb.hits", tlb.hits);
        r.counter("kernel.tlb.misses", tlb.misses);
        r.counter("kernel.tlb.shootdowns", tlb.shootdowns);
        r.counter("kernel.tlb.shootdown.ipis", s.tlb_shootdown_ipis);
        r.counter("kernel.tlb.shootdown.cycles", s.tlb_shootdown_cycles);

        let mem = self.mem_gauges();
        r.gauge("kernel.mem.kmem_bytes", s.thread_kmem);
        r.gauge("kernel.mem.kmem_peak_bytes", s.thread_kmem_peak);
        r.gauge("kernel.mem.tcb_bytes", mem.tcb_bytes);
        r.gauge("kernel.mem.kstacks_bytes", mem.kstacks_bytes);
        r.gauge(
            "kernel.mem.kstacks_retained_bytes",
            mem.retained_kstack_bytes,
        );

        r.gauge("kernel.thread.live", mem.live_threads);
        r.counter("kernel.thread.created", s.threads_created);
        r.counter("kernel.object.created", s.objects_created);

        // Snapshot-engine counters: live in the recorder (outside every
        // snapshot, so a restored kernel replays bit-identically), emitted
        // always — zeros when recording is off — so the inventory has
        // deterministic instances.
        let (snap_taken, snap_dropped, snap_bytes, snap_windows) = self
            .krec
            .as_ref()
            .map(|k| {
                (
                    k.taken(),
                    k.dropped(),
                    k.bytes_total(),
                    k.windows().len() as u64,
                )
            })
            .unwrap_or((0, 0, 0, 0));
        r.counter("kernel.snap.taken", snap_taken);
        r.counter("kernel.snap.dropped", snap_dropped);
        r.counter("kernel.snap.bytes", snap_bytes);
        r.counter("kernel.snap.windows", snap_windows);

        r.counter("kernel.probe.runs", s.probe_runs);
        r.counter("kernel.probe.misses", s.probe_misses);
        r.hist("kernel.probe.latency_cycles", s.probe_hist.clone());

        let recorded: u64 = (0..self.cfg.num_cpus)
            .filter_map(|c| self.trace.ring(c))
            .map(|ring| ring.total_recorded())
            .sum();
        r.counter("kernel.trace.recorded", recorded);
        r.counter("kernel.trace.dropped", self.trace.dropped_total());

        r.hist(
            "kernel.kprof.preempt_latency_cycles",
            self.kprof.preempt_latency().clone(),
        );

        // Flow-integrity checking (zeros when the checker is off, so the
        // rows — and the documented inventory — are always present).
        r.counter("kernel.flowcheck.checks", self.flowcheck.checks);
        r.counter(
            "kernel.flowcheck.violations",
            self.flowcheck.violations_total,
        );
        // Process-wide kfuzz campaign counters (like the auditor coverage
        // counters above: they accumulate across every kernel this
        // process built, and read zero outside a fuzzing run).
        r.counter("kernel.fuzz.programs", crate::kfuzz::programs_run());
        r.counter("kernel.fuzz.signatures", crate::kfuzz::signatures_seen());
        r.counter("kernel.fuzz.findings", crate::kfuzz::findings_seen());

        if self.kspan.enabled {
            r.counter("kernel.kspan.requests", self.kspan.completed().len() as u64);
            r.counter("kernel.kspan.aborted", self.kspan.aborted());
            r.counter("kernel.kspan.flows", self.kspan.flows().len() as u64);
            r.hist(
                "kernel.kspan.e2e_cycles",
                self.kspan.e2e_histogram().clone(),
            );
            // The big-lock pseudo-object is always present (zero if never
            // contended) so the inventory has a deterministic family row.
            let mut seen_klock = false;
            for (obj, c) in self.kspan.contention() {
                seen_klock |= obj == "klock";
                r.family_counter(
                    format!("kernel.contention.{obj}.wait_cycles"),
                    "kernel.contention.<object>.wait_cycles",
                    c.wait_cycles,
                );
                r.family_counter(
                    format!("kernel.contention.{obj}.waits"),
                    "kernel.contention.<object>.waits",
                    c.waits,
                );
            }
            if !seen_klock {
                r.family_counter(
                    "kernel.contention.klock.wait_cycles".to_string(),
                    "kernel.contention.<object>.wait_cycles",
                    0,
                );
                r.family_counter(
                    "kernel.contention.klock.waits".to_string(),
                    "kernel.contention.<object>.waits",
                    0,
                );
            }
        }

        r
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for FaultSide {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            FaultSide::Client => 0,
            FaultSide::Server => 1,
            FaultSide::Other => 2,
        });
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(FaultSide::Client),
            1 => Ok(FaultSide::Server),
            2 => Ok(FaultSide::Other),
            t => Err(SnapError::BadTag {
                what: "FaultSide",
                tag: t as u32,
            }),
        }
    }
}

impl Snap for FaultKind {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            FaultKind::Soft => 0,
            FaultKind::Hard => 1,
        });
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(FaultKind::Soft),
            1 => Ok(FaultKind::Hard),
            t => Err(SnapError::BadTag {
                what: "FaultKind",
                tag: t as u32,
            }),
        }
    }
}

impl Snap for FaultRecord {
    fn snap(&self, w: &mut SnapWriter) {
        self.side.snap(w);
        self.kind.snap(w);
        w.u64(self.remedy_cycles);
        w.u64(self.rollback_cycles);
        w.bool(self.during_ipc);
        w.u64(self.at);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultRecord {
            side: Snap::restore(r)?,
            kind: Snap::restore(r)?,
            remedy_cycles: r.u64()?,
            rollback_cycles: r.u64()?,
            during_ipc: r.bool()?,
            at: r.u64()?,
        })
    }
}

impl Snap for PerSysCounts {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let v: Vec<u64> = Snap::restore(r)?;
        if v.len() != SYSCALL_COUNT {
            return Err(SnapError::Invalid("per-entrypoint count width"));
        }
        Ok(PerSysCounts(v))
    }
}

impl Snap for MemGauges {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.live_threads);
        w.u64(self.tcb_bytes);
        w.u64(self.kstacks_bytes);
        w.u64(self.retained_kstack_bytes);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MemGauges {
            live_threads: r.u64()?,
            tcb_bytes: r.u64()?,
            kstacks_bytes: r.u64()?,
            retained_kstack_bytes: r.u64()?,
        })
    }
}

impl Snap for Stats {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.syscalls);
        w.u64(self.restarts);
        self.per_sys.snap(w);
        w.u64(self.ctx_switches);
        w.u64(self.space_switches);
        w.u64(self.soft_faults);
        w.u64(self.hard_faults);
        w.u64(self.fatal_faults);
        self.faults_injected.snap(w);
        w.u64(self.user_cycles);
        w.u64(self.kernel_cycles);
        w.u64(self.idle_cycles);
        w.u64(self.rollback_cycles);
        w.u64(self.klock_cycles);
        w.u64(self.klock_wait_cycles);
        w.u64(self.ipc_bytes);
        w.u64(self.ipc_messages);
        w.u64(self.preempt_points_taken);
        w.u64(self.kernel_preemptions);
        w.u64(self.user_preemptions);
        self.probe_hist.snap(w);
        w.u64(self.probe_runs);
        w.u64(self.probe_misses);
        self.fault_records.snap(w);
        w.u64(self.thread_kmem);
        w.u64(self.thread_kmem_peak);
        w.u64(self.threads_created);
        w.u64(self.objects_created);
        self.trace_log.snap(w);
        self.tlb_retired.snap(w);
        w.u64(self.sched_pushes);
        w.u64(self.sched_steals);
        w.u64(self.sched_steal_attempts);
        w.u64(self.sched_ipis);
        w.u64(self.runq_wait_cycles);
        w.u64(self.runq_waits);
        w.u64(self.tlb_shootdown_ipis);
        w.u64(self.tlb_shootdown_cycles);
        self.waitq.snap(w);
        w.u64(self.port_lookups);
        w.u64(self.port_ref_chases);
        w.u64(self.conn_unlinks_fast);
        w.u64(self.conn_unlinks_linear);
        w.u64(self.ipc_submit_buffered);
        w.u64(self.ipc_submit_ops);
        w.u64(self.ipc_submit_batches);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Stats {
            syscalls: r.u64()?,
            restarts: r.u64()?,
            per_sys: Snap::restore(r)?,
            ctx_switches: r.u64()?,
            space_switches: r.u64()?,
            soft_faults: r.u64()?,
            hard_faults: r.u64()?,
            fatal_faults: r.u64()?,
            faults_injected: Snap::restore(r)?,
            user_cycles: r.u64()?,
            kernel_cycles: r.u64()?,
            idle_cycles: r.u64()?,
            rollback_cycles: r.u64()?,
            klock_cycles: r.u64()?,
            klock_wait_cycles: r.u64()?,
            ipc_bytes: r.u64()?,
            ipc_messages: r.u64()?,
            preempt_points_taken: r.u64()?,
            kernel_preemptions: r.u64()?,
            user_preemptions: r.u64()?,
            probe_hist: Snap::restore(r)?,
            probe_runs: r.u64()?,
            probe_misses: r.u64()?,
            fault_records: Snap::restore(r)?,
            thread_kmem: r.u64()?,
            thread_kmem_peak: r.u64()?,
            threads_created: r.u64()?,
            objects_created: r.u64()?,
            trace_log: Snap::restore(r)?,
            tlb_retired: Snap::restore(r)?,
            sched_pushes: r.u64()?,
            sched_steals: r.u64()?,
            sched_steal_attempts: r.u64()?,
            sched_ipis: r.u64()?,
            runq_wait_cycles: r.u64()?,
            runq_waits: r.u64()?,
            tlb_shootdown_ipis: r.u64()?,
            tlb_shootdown_cycles: r.u64()?,
            waitq: Snap::restore(r)?,
            port_lookups: r.u64()?,
            port_ref_chases: r.u64()?,
            conn_unlinks_fast: r.u64()?,
            conn_unlinks_linear: r.u64()?,
            ipc_submit_buffered: r.u64()?,
            ipc_submit_ops: r.u64()?,
            ipc_submit_batches: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmem_tracks_peak() {
        let mut s = Stats::default();
        s.kmem_delta(4096);
        s.kmem_delta(4096);
        assert_eq!(s.thread_kmem, 8192);
        assert_eq!(s.thread_kmem_peak, 8192);
        s.kmem_delta(-4096);
        assert_eq!(s.thread_kmem, 4096);
        assert_eq!(s.thread_kmem_peak, 8192);
    }

    #[test]
    fn probe_latency_summaries() {
        let mut s = Stats::default();
        assert_eq!(s.probe_avg_us(), 0.0);
        for c in [200, 400, 600] {
            s.probe_hist.record(c); // 1µs, 2µs, 3µs
        }
        assert!((s.probe_avg_us() - 2.0).abs() < 1e-9);
        assert!((s.probe_max_us() - 3.0).abs() < 1e-9);
        // p100 is the exact max; lower percentiles stay within bucket error.
        assert!((s.probe_percentile_us(100.0) - 3.0).abs() < 1e-9);
        assert!(s.probe_percentile_us(50.0) <= s.probe_percentile_us(99.0));
    }

    #[test]
    fn kmem_never_underflows() {
        let mut s = Stats::default();
        s.kmem_delta(-100);
        assert_eq!(s.thread_kmem, 0);
    }

    #[test]
    fn per_sys_counts_cover_every_entrypoint() {
        let mut p = PerSysCounts::default();
        for d in SYSCALLS {
            p.bump(d.sys);
        }
        assert_eq!(p.total(), SYSCALL_COUNT as u64);
        assert_eq!(p.get(Sys::ThreadSelf), 1);
    }

    #[test]
    fn name_grammar() {
        assert!(valid_name("kernel.tlb.hits"));
        assert!(valid_name("kernel.syscall.ipc_send_oneway.count"));
        assert!(!valid_name(""));
        assert!(!valid_name("Kernel.tlb"));
        assert!(!valid_name("kernel tlb"));
        assert!(!valid_name("kernel-tlb"));
    }

    #[test]
    #[should_panic(expected = "duplicate kstat name")]
    fn duplicate_names_rejected() {
        let mut r = KstatRegistry::new();
        r.counter("kernel.x", 1);
        r.counter("kernel.x", 2);
    }

    #[test]
    fn registry_exports_nested_json_and_flat_text() {
        let mut r = KstatRegistry::new();
        r.counter("kernel.tlb.hits", 7);
        r.gauge("kernel.mem.kmem_bytes", 4096);
        let mut h = Histogram::new();
        h.record(10);
        r.hist("kernel.probe.latency_cycles", h);

        let text = r.dump_text(true);
        assert!(text.contains("kernel.tlb.hits counter 7"));
        assert!(text.contains("kernel.mem.kmem_bytes gauge 4096"));
        assert!(text.contains("kernel.probe.latency_cycles hist count=1"));

        let j = r.to_json();
        let hits = j
            .get("kernel")
            .and_then(|k| k.get("tlb"))
            .and_then(|t| t.get("hits"))
            .expect("nested path");
        assert_eq!(hits.get("kind").and_then(|k| k.as_str()), Some("counter"));
        assert_eq!(hits.get("value").and_then(|v| v.as_u64()), Some(7));
    }

    #[test]
    fn zero_elision_in_text_dump() {
        let mut r = KstatRegistry::new();
        r.counter("kernel.a", 0);
        r.counter("kernel.b", 3);
        r.hist("kernel.h", Histogram::new());
        assert_eq!(r.dump_text(false), "kernel.b counter 3\n");
        assert_eq!(r.dump_text(true).lines().count(), 3);
    }
}

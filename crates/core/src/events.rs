//! The simulated timer: a deterministic event queue.
//!
//! All asynchrony in the simulation — timeslice expiry, the Table 6
//! periodic probe, `thread_sleep` wakeups — flows through this queue, which
//! makes every run exactly reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fluke_arch::cost::Cycles;

use crate::ids::ThreadId;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Wake a blocked thread (sleep expiry, probe period).
    Wake(ThreadId),
    /// Periodic wake: wake the thread and re-arm after `interval` cycles.
    /// If the thread is still pending from the previous period, count a
    /// miss instead (Table 6 "miss" column).
    Periodic {
        /// Thread to wake.
        thread: ThreadId,
        /// Period in cycles.
        interval: Cycles,
    },
    /// End of the current thread's timeslice on a CPU. Stale events are
    /// filtered by generation number.
    TimesliceEnd {
        /// CPU whose timeslice ended.
        cpu: usize,
        /// Dispatch generation the event was armed for.
        generation: u64,
    },
}

/// A queued event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Fire time in simulated cycles.
    pub at: Cycles,
    /// Tie-break sequence number (FIFO among same-time events).
    pub seq: u64,
    /// Action.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timer events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` to fire at `at`.
    pub fn push(&mut self, at: Cycles, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { at, seq, kind }));
    }

    /// Fire time of the earliest pending event.
    pub fn next_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pop the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<Event> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.at <= now => self.heap.pop().map(|Reverse(e)| e),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for EventKind {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            EventKind::Wake(t) => {
                w.u8(0);
                t.snap(w);
            }
            EventKind::Periodic { thread, interval } => {
                w.u8(1);
                thread.snap(w);
                w.u64(interval);
            }
            EventKind::TimesliceEnd { cpu, generation } => {
                w.u8(2);
                w.usize(cpu);
                w.u64(generation);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => EventKind::Wake(Snap::restore(r)?),
            1 => EventKind::Periodic {
                thread: Snap::restore(r)?,
                interval: r.u64()?,
            },
            2 => EventKind::TimesliceEnd {
                cpu: r.usize()?,
                generation: r.u64()?,
            },
            t => {
                return Err(SnapError::BadTag {
                    what: "eventkind",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for Event {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.at);
        w.u64(self.seq);
        self.kind.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Event {
            at: r.u64()?,
            seq: r.u64()?,
            kind: Snap::restore(r)?,
        })
    }
}

// The heap is serialized in canonical (at, seq) order — heap-internal layout
// is host state. (at, seq) totally orders events (seq is unique), so the
// encoding is canonical and the rebuilt heap behaves identically.
impl Snap for EventQueue {
    fn snap(&self, w: &mut SnapWriter) {
        let mut events: Vec<&Event> = self.heap.iter().map(|Reverse(e)| e).collect();
        events.sort();
        w.usize(events.len());
        for e in events {
            e.snap(w);
        }
        w.u64(self.next_seq);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut heap = BinaryHeap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            heap.push(Reverse(Event::restore(r)?));
        }
        Ok(EventQueue {
            heap,
            next_seq: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.push(300, EventKind::Wake(ThreadId(3)));
        q.push(100, EventKind::Wake(ThreadId(1)));
        q.push(200, EventKind::Wake(ThreadId(2)));
        assert_eq!(q.next_time(), Some(100));
        assert!(q.pop_due(50).is_none());
        let e = q.pop_due(150).unwrap();
        assert_eq!(e.kind, EventKind::Wake(ThreadId(1)));
        let e = q.pop_due(1000).unwrap();
        assert_eq!(e.at, 200);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn same_time_events_fifo() {
        let mut q = EventQueue::new();
        q.push(100, EventKind::Wake(ThreadId(1)));
        q.push(100, EventKind::Wake(ThreadId(2)));
        assert_eq!(q.pop_due(100).unwrap().kind, EventKind::Wake(ThreadId(1)));
        assert_eq!(q.pop_due(100).unwrap().kind, EventKind::Wake(ThreadId(2)));
        assert!(q.is_empty());
    }
}

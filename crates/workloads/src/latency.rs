//! The Table 6 preemption-latency probe.
//!
//! "We introduce a second, high-priority kernel thread which is scheduled
//! every millisecond, and record its observed preemption latencies" (§5.3).
//! The probe is a native (kernel) thread: on each dispatch it records
//! `now - scheduled_time`, performs a small fixed amount of work, and
//! sleeps until its next period. Periods that arrive while it is still
//! pending count as misses (Table 6's "miss" column).

use fluke_arch::cost::{ms_to_cycles, Cycles};
use fluke_core::{Kernel, NativeAction, NativeBody, Stats, ThreadId};

/// Priority the probe runs at (above every workload thread).
pub const PROBE_PRIORITY: u32 = 24;

/// The probe body: records wakeup→dispatch latency.
#[derive(Debug, Default)]
pub struct LatencyProbe {
    /// Cycles of work modeled per activation.
    pub work: Cycles,
}

impl NativeBody for LatencyProbe {
    fn on_dispatch(&mut self, woken_at: Cycles, now: Cycles, stats: &mut Stats) -> NativeAction {
        if woken_at > 0 {
            stats.probe_hist.record(now.saturating_sub(woken_at));
            stats.probe_runs += 1;
        }
        NativeAction::BlockUntilWoken { work: self.work }
    }
}

/// Install the probe on `k`, scheduled every `period_ms` milliseconds.
pub fn install_probe(k: &mut Kernel, period_ms: u64) -> ThreadId {
    let t = k.spawn_native(
        PROBE_PRIORITY,
        Box::new(LatencyProbe {
            work: 100, // ~0.5µs of probe work per activation
        }),
    );
    let period = ms_to_cycles(period_ms);
    k.start_periodic(t, period, period);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluke_arch::Assembler;
    use fluke_core::Config;

    #[test]
    fn probe_fires_once_per_period_when_cpu_is_idle_or_user() {
        let mut k = Kernel::new(Config::process_np());
        let space = k.create_space();
        k.grant_pages(space, 0x1000, 0x1000, true);
        // A pure-compute thread spinning for ~10ms.
        let mut a = Assembler::new("spin");
        for _ in 0..2100 {
            a.compute(1000);
        }
        a.halt();
        let pid = k.register_program(a.finish());
        let t = k.spawn_thread(space, pid, fluke_arch::UserRegs::new(), 8);
        install_probe(&mut k, 1);
        // Run exactly 10ms of simulated time.
        k.run(Some(ms_to_cycles(10)));
        let _ = t;
        // ~9-10 periods elapsed; nearly all should have run with tiny
        // latency (user-mode preemption is immediate).
        assert!(k.stats.probe_runs >= 8, "runs={}", k.stats.probe_runs);
        assert_eq!(k.stats.probe_misses, 0);
        let max = k.stats.probe_hist.max();
        // Below ~2000 cycles (10µs): dispatch + at most one Compute(1000).
        assert!(max < 2_000, "max latency {max} cycles");
    }

    #[test]
    fn probe_misses_counted_when_it_cannot_finish() {
        let mut k = Kernel::new(Config::process_np());
        // A probe whose own work exceeds its period can never keep up.
        let t = k.spawn_native(
            PROBE_PRIORITY,
            Box::new(LatencyProbe {
                work: ms_to_cycles(3),
            }),
        );
        k.start_periodic(t, ms_to_cycles(1), ms_to_cycles(1));
        k.run(Some(ms_to_cycles(20)));
        assert!(k.stats.probe_misses > 0);
    }
}

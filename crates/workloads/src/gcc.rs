//! gcc: a compile pipeline.
//!
//! "Compile a single .c file. This test includes running the front end,
//! the C preprocessor, C compiler, assembler and linker to produce a
//! runnable Fluke binary" (§5.3). The reproduction models each tool as a
//! process in its own space that (a) waits for the previous stage,
//! (b) reads its input from a file server over IPC in 8KB chunks,
//! (c) works over demand-paged working memory (exercising the pager like
//! a real compiler's heap), (d) burns the dominant user-mode compute, and
//! (e) writes its output back over IPC. The profile is exactly what
//! Table 5 needs: overwhelmingly user-mode, with a modest syscall/fault
//! seasoning.

use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::pager::PagerSetup;
use fluke_user::proc::ChildProc;
use fluke_user::FlukeAsm;

use crate::common::{counted_loop, WorkloadRun};

/// Pipeline shape.
#[derive(Debug, Clone)]
pub struct GccParams {
    /// Number of tool stages (front end, cpp, cc1, as, ld = 5).
    pub stages: u32,
    /// 8KB input chunks each stage reads over IPC.
    pub chunks_per_stage: u32,
    /// Pages of demand-paged working memory each stage touches.
    pub work_pages: u32,
    /// User-mode compute per stage, in `compute(5000)` quanta.
    pub compute_quanta: u32,
}

impl GccParams {
    /// Full-size run (≈6-7 simulated seconds, like the paper's 7150ms).
    pub fn paper() -> Self {
        GccParams {
            stages: 5,
            chunks_per_stage: 50,
            work_pages: 1_000,
            compute_quanta: 50_000,
        }
    }

    /// Scaled-down run for tests.
    pub fn quick() -> Self {
        GccParams {
            stages: 3,
            chunks_per_stage: 3,
            work_pages: 4,
            compute_quanta: 500,
        }
    }
}

const FS_MEM: u32 = 0x0010_0000;
const FS_BUF: u32 = FS_MEM + 0x4000;
const STAGE_MEM: u32 = 0x0030_0000;
const WORK_BASE: u32 = 0x0600_0000;

/// Build the gcc pipeline.
pub fn build(cfg: Config, p: &GccParams) -> WorkloadRun {
    let mut k = Kernel::new(cfg);
    let pager = PagerSetup::boot(&mut k, 64 << 20, 12);

    // File server: one thread serves reads (16-byte request → 8KB data),
    // another serves writes (8KB data → 16-byte ack). Fixed message shapes
    // keep every window exact.
    let mut fs = ChildProc::with_mem(&mut k, FS_MEM, 0x8000);
    k.grant_pages(fs.space, FS_BUF, 32 << 10, true);
    let h_read_port = fs.alloc_obj();
    let h_write_port = fs.alloc_obj();
    let read_port = k.loader_create(fs.space, h_read_port, ObjType::Port);
    let write_port = k.loader_create(fs.space, h_write_port, ObjType::Port);
    let mut a = Assembler::new("gcc-fs-read");
    a.label("loop");
    a.server_wait_receive(h_read_port, FS_BUF, 16);
    a.server_ack_send(FS_BUF, 8192);
    a.jmp("loop");
    let _fs_read = fs.start(&mut k, a.finish(), 9);
    let mut a = Assembler::new("gcc-fs-write");
    a.label("loop");
    a.server_wait_receive(h_write_port, FS_BUF + 0x3000, 8192);
    a.server_ack_send(FS_BUF + 0x3000, 16);
    a.jmp("loop");
    let _fs_write = fs.start(&mut k, a.finish(), 9);

    // Stages, each in its own space with a demand-paged working window.
    // Stage i>0 waits on a Thread object at `base + 0x400` in its own
    // space, wired up after all stages are created.
    let mut mains = Vec::new();
    for stage in 0..p.stages {
        let base = STAGE_MEM + stage * 0x0002_0000;
        let mut proc = ChildProc::with_mem(&mut k, base, 0x8000);
        k.grant_pages(proc.space, base + 0x10_000, 16 << 10, true); // io buffers
        let h_read_ref = proc.alloc_obj();
        let h_write_ref = proc.alloc_obj();
        k.loader_ref(proc.space, h_read_ref, read_port);
        k.loader_ref(proc.space, h_write_ref, write_port);
        // Demand-paged working memory, a distinct slice per stage.
        let work = WORK_BASE;
        let mut slot = 0x1a00;
        while k.object_at(pager.space, slot).is_some() {
            slot += 32;
        }
        k.loader_mapping(
            pager.space,
            slot,
            proc.space,
            work,
            (p.work_pages + 1) * 4096,
            pager.region,
            stage * (p.work_pages + 1) * 4096,
            true,
        );

        let io_in = base + 0x10_000;
        let io_req = base + 0x13_000;
        let ctr = base + 0x200;
        let mut a = Assembler::new("gcc-stage");
        // Wait for the previous stage to finish (pipeline ordering).
        if stage > 0 {
            a.sys_h(Sys::ThreadWait, base + 0x400);
        }
        // Read the input over IPC.
        if p.chunks_per_stage > 0 {
            counted_loop(&mut a, "read", ctr, p.chunks_per_stage, |a| {
                a.client_rpc(h_read_ref, io_req, 16, io_in, 8192);
            });
        }
        // Touch the working set (demand-paged: one fault per page).
        // `counted_loop` clobbers ebp/edx, so the walk uses esi/ebx.
        if p.work_pages > 0 {
            a.movi(Reg::Esi, work);
            a.movi(Reg::Ebx, 0x5a);
            counted_loop(&mut a, "touch", ctr + 4, p.work_pages, |a| {
                a.storeb(Reg::Esi, 0, Reg::Ebx);
                a.addi(Reg::Esi, 4096);
            });
        }
        // The dominant phase: user-mode compute.
        if p.compute_quanta > 0 {
            counted_loop(&mut a, "compute", ctr + 8, p.compute_quanta, |a| {
                a.compute(5_000);
            });
        }
        // Write the output back.
        if p.chunks_per_stage > 0 {
            counted_loop(&mut a, "write", ctr + 12, p.chunks_per_stage, |a| {
                a.client_rpc(h_write_ref, io_in, 8192, io_req, 16);
            });
        }
        a.halt();
        let t = proc.start(&mut k, a.finish(), 8);
        mains.push(t);
    }
    // Wire the join handles: stage i+1 waits on stage i.
    for (i, window) in mains.windows(2).enumerate() {
        let prev = window[0];
        let base = STAGE_MEM + ((i as u32) + 1) * 0x0002_0000;
        let space = {
            // Recover the space of stage i+1 from its thread.
            let t = window[1];
            k.thread_space(t).expect("stage space")
        };
        k.loader_thread_object(space, base + 0x400, prev);
    }
    WorkloadRun {
        kernel: k,
        main_threads: mains,
        label: "gcc",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn quick_gcc_pipeline_completes() {
        let res = run_workload(
            build(Config::process_np(), &GccParams::quick()),
            50_000_000_000,
        );
        // 3 stages × (3 reads + 3 writes) RPCs plus pager traffic.
        assert!(res.stats.ipc_messages >= 18);
        assert!(res.stats.hard_faults >= 9, "working sets must fault");
    }

    #[test]
    fn gcc_is_user_mode_dominated() {
        let res = run_workload(
            build(Config::process_np(), &GccParams::quick()),
            50_000_000_000,
        );
        assert!(
            res.stats.user_cycles > res.stats.kernel_cycles,
            "user {} !> kernel {}",
            res.stats.user_cycles,
            res.stats.kernel_cycles
        );
    }

    #[test]
    fn gcc_completes_on_all_configurations() {
        for cfg in Config::all_five() {
            let label = cfg.label;
            let res = run_workload(build(cfg, &GccParams::quick()), 50_000_000_000);
            assert!(res.elapsed > 0, "{label} failed");
        }
    }
}

//! memtest: sequential byte-granularity scan of demand-paged memory.
//!
//! "Accesses 16MB of memory one byte at a time sequentially. Memtest runs
//! under a memory manager which allocates memory on demand, exercising
//! kernel fault handling and the exception IPC facility" (§5.3). The
//! per-byte loop is padded to ≈34 cycles/byte, matching the paper's
//! 2884ms / 16MB on the 200MHz baseline.

use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::Config;
use fluke_user::pager::PagerSetup;

use crate::common::WorkloadRun;

/// Base of the demand-paged window the scan walks.
pub const SCAN_BASE: u32 = 0x0400_0000;

/// Cycles of compute padding per byte (loop ≈ 10 cycles + padding ≈ 29
/// cycles/byte of user work; with demand-paging overhead the end-to-end
/// rate lands on the paper's 2884ms / 16MB).
const PAD: u32 = 19;

/// Build memtest scanning `mb` megabytes (the paper uses 16).
///
/// # Panics
///
/// Panics if `mb` is zero.
pub fn build(cfg: Config, mb: u32) -> WorkloadRun {
    assert!(mb >= 1, "memtest needs at least 1MB");
    let mut k = Kernelish::boot(cfg, mb);
    let bytes = mb << 20;
    let mut a = Assembler::new("memtest");
    a.movi(Reg::Ebp, SCAN_BASE);
    a.movi(Reg::Ecx, bytes);
    a.label("scan");
    a.loadb(Reg::Edx, Reg::Ebp, 0);
    a.addi(Reg::Ebp, 1);
    a.compute(PAD);
    a.subi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 0);
    a.jcc(Cond::Ne, "scan");
    a.halt();
    let pid = k.kernel.register_program(a.finish());
    let t = k
        .kernel
        .spawn_thread(k.child, pid, fluke_arch::UserRegs::new(), 8);
    WorkloadRun {
        kernel: k.kernel,
        main_threads: vec![t],
        label: "memtest",
    }
}

struct Kernelish {
    kernel: fluke_core::Kernel,
    child: fluke_core::SpaceId,
}

impl Kernelish {
    fn boot(cfg: Config, mb: u32) -> Kernelish {
        let mut kernel = fluke_core::Kernel::new(cfg);
        let pager = PagerSetup::boot(&mut kernel, mb << 20, 12);
        let child = pager.paged_child(&mut kernel, SCAN_BASE, mb << 20, 0);
        Kernelish { kernel, child }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn memtest_faults_once_per_page() {
        // 256KB scan = 64 pages = 64 hard faults through the pager.
        let run = build_kb(Config::process_np(), 256);
        let res = run_workload(run, 50_000_000_000);
        assert_eq!(res.stats.hard_faults, 64);
        assert!(res.stats.soft_faults >= 64);
    }

    #[test]
    fn memtest_rate_close_to_paper_calibration() {
        // The paper: 16MB in 2884ms → ≈34.4 cycles/byte end to end.
        let run = build_kb(Config::process_np(), 512);
        let res = run_workload(run, 50_000_000_000);
        let per_byte = res.elapsed as f64 / (512.0 * 1024.0);
        assert!(
            (26.0..40.0).contains(&per_byte),
            "cycles/byte {per_byte} out of calibration band"
        );
    }

    /// KB-granular variant used by tests.
    fn build_kb(cfg: Config, kb: u32) -> WorkloadRun {
        let mut k = Kernelish::boot(cfg, 1); // 1MB backing
        let bytes = kb << 10;
        let mut a = Assembler::new("memtest");
        a.movi(Reg::Ebp, SCAN_BASE);
        a.movi(Reg::Ecx, bytes);
        a.label("scan");
        a.loadb(Reg::Edx, Reg::Ebp, 0);
        a.addi(Reg::Ebp, 1);
        a.compute(PAD);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(Cond::Ne, "scan");
        a.halt();
        let pid = k.kernel.register_program(a.finish());
        let t = k
            .kernel
            .spawn_thread(k.child, pid, fluke_arch::UserRegs::new(), 8);
        WorkloadRun {
            kernel: k.kernel,
            main_threads: vec![t],
            label: "memtest",
        }
    }
}

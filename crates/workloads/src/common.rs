//! Shared workload plumbing: built runs, memory-cell loop counters, and
//! the runner.

use fluke_arch::cost::{cycles_to_us, Cycles};
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Kernel, RunExit, Stats, ThreadId};

/// A kernel instance with a workload loaded and ready to run.
pub struct WorkloadRun {
    /// The booted kernel.
    pub kernel: Kernel,
    /// Threads whose completion defines the end of the run.
    pub main_threads: Vec<ThreadId>,
    /// Workload label for reports.
    pub label: &'static str,
}

/// The outcome of a workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total simulated cycles from start to the last main thread's halt.
    pub elapsed: Cycles,
    /// Final kernel statistics.
    pub stats: Stats,
    /// Configuration label the run used.
    pub config: &'static str,
    /// Workload label.
    pub workload: &'static str,
}

impl RunResult {
    /// Elapsed simulated milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        cycles_to_us(self.elapsed) / 1000.0
    }
}

/// Why a workload failed to complete ([`try_run_workload`]). Structured so
/// campaign drivers (kfault sweeps, fuzzers) can report a divergence and
/// carry on instead of tearing down the whole process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// The safety budget elapsed before every main thread halted.
    Timeout {
        /// Workload label.
        workload: &'static str,
        /// The exhausted cycle budget.
        budget: Cycles,
    },
    /// The kernel ran out of runnable work (halt or deadlock) with main
    /// threads still unfinished.
    Wedged {
        /// Workload label.
        workload: &'static str,
        /// How the kernel's run loop returned.
        exit: RunExit,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Timeout { workload, budget } => {
                write!(
                    f,
                    "workload {workload} did not finish within {budget} cycles"
                )
            }
            WorkloadError::Wedged { workload, exit } => {
                write!(f, "workload {workload} wedged (exit {exit:?})")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Execute a built workload to completion, or report a structured
/// [`WorkloadError`] if the safety budget elapses or the system wedges.
pub fn try_run_workload(mut w: WorkloadRun, budget: Cycles) -> Result<RunResult, WorkloadError> {
    let start = w.kernel.now();
    let deadline = start + budget;
    // Run in slices: a periodic probe keeps the timer queue non-empty
    // forever, so the kernel by itself would only return at the deadline.
    const SLICE: Cycles = 50_000; // 0.25ms granularity on completion time
    loop {
        let exit = w.kernel.run(Some((w.kernel.now() + SLICE).min(deadline)));
        let done = w.main_threads.iter().all(|&t| w.kernel.thread_halted(t));
        if done {
            break;
        }
        match exit {
            RunExit::TimeLimit if w.kernel.now() >= deadline => {
                return Err(WorkloadError::Timeout {
                    workload: w.label,
                    budget,
                });
            }
            RunExit::TimeLimit => {}
            RunExit::AllHalted | RunExit::Deadlock => {
                return Err(WorkloadError::Wedged {
                    workload: w.label,
                    exit,
                });
            }
        }
    }
    Ok(RunResult {
        elapsed: w.kernel.now() - start,
        stats: w.kernel.stats.clone(),
        config: w.kernel.cfg.label,
        workload: w.label,
    })
}

/// Execute a built workload to completion (or the safety budget).
///
/// # Panics
///
/// Panics if the workload fails to finish within `budget` cycles — a
/// workload bug, not a measurement. Top-level benches and tests want that
/// loud failure; campaign drivers use [`try_run_workload`].
pub fn run_workload(w: WorkloadRun, budget: Cycles) -> RunResult {
    try_run_workload(w, budget).unwrap_or_else(|e| panic!("{e}"))
}

/// Emit a counted loop whose counter lives in a memory cell at `cell`
/// (syscall wrappers clobber most registers, so loop counters cannot live
/// in registers). `body` emits the loop body.
pub fn counted_loop(
    a: &mut Assembler,
    label: &str,
    cell: u32,
    count: u32,
    body: impl FnOnce(&mut Assembler),
) {
    // cell <- count
    a.movi(Reg::Ebp, cell);
    a.movi(Reg::Edx, count);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.label(label);
    body(a);
    // cell -= 1; loop while > 0
    a.movi(Reg::Ebp, cell);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.subi(Reg::Edx, 1);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.cmpi(Reg::Edx, 0);
    a.jcc(Cond::Ne, label);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluke_core::Config;

    #[test]
    fn counted_loop_iterates_exactly_n_times() {
        let mut k = Kernel::new(Config::process_np());
        let space = k.create_space();
        k.grant_pages(space, 0x1000, 0x1000, true);
        let acc = 0x1800;
        let mut a = Assembler::new("loop");
        // acc starts 0; add 3 per iteration, 7 iterations.
        counted_loop(&mut a, "body", 0x1c00, 7, |a| {
            a.movi(Reg::Esi, acc);
            a.load(Reg::Ebx, Reg::Esi, 0);
            a.addi(Reg::Ebx, 3);
            a.store(Reg::Esi, 0, Reg::Ebx);
        });
        a.halt();
        let pid = k.register_program(a.finish());
        let t = k.spawn_thread(space, pid, fluke_arch::UserRegs::new(), 8);
        let exit = k.run(Some(10_000_000));
        assert_ne!(exit, RunExit::TimeLimit);
        assert!(k.thread_halted(t));
        assert_eq!(k.read_mem_u32(space, acc), 21);
    }
}

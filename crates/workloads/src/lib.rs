#![warn(missing_docs)]
//! The benchmark applications of the paper's evaluation (§5.3):
//!
//! * [`flukeperf`] — "a series of tests to time various synchronization and
//!   IPC primitives. It performs a large number of kernel calls and context
//!   switches";
//! * [`memtest`] — "accesses 16MB of memory one byte at a time
//!   sequentially ... under a memory manager which allocates memory on
//!   demand, exercising kernel fault handling and the exception IPC
//!   facility";
//! * [`gcc`] — a compile: a pipeline of user-mode-compute-heavy stages
//!   (front end, cpp, cc1, as, ld) reading and writing their data over
//!   IPC, with demand-paged working memory;
//! * [`latency`] — the Table 6 probe: a high-priority kernel thread
//!   scheduled every millisecond whose wakeup-to-dispatch delay is the
//!   preemption latency.
//!
//! Every workload builds deterministically from a [`fluke_core::Config`],
//! so cross-configuration comparisons (Table 5/6) measure exactly the same
//! work.

pub mod common;
pub mod flukeperf;
pub mod gcc;
pub mod latency;
pub mod memtest;

pub use common::{run_workload, try_run_workload, RunResult, WorkloadError, WorkloadRun};
pub use flukeperf::FlukeperfParams;
pub use gcc::GccParams;
pub use latency::LatencyProbe;

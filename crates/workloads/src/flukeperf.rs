//! flukeperf: the synchronization + IPC microbenchmark suite.
//!
//! "It performs a large number of kernel calls and context switches"
//! (§5.3). Phases, all with statically fixed work so every configuration
//! measures the identical workload:
//!
//! 1. null system calls (the Trivial path);
//! 2. uncontended mutex lock/unlock pairs (the Short path);
//! 3. condition-variable signals (Short);
//! 4. small RPCs against an echo server — the context-switch mill;
//! 5. medium one-way sends (64KB) into a sink server — the IPC copy path
//!    with its preemption points;
//! 6. a few large sends (1.5MB) — the long kernel operations that bound
//!    NP preemption latency (Table 6 max ≈ 7.4ms);
//! 7. `region_search` sweeps — the long *non-IPC* kernel path without a
//!    partial-preemption point (bounds PP latency, ≈ 1.2ms).

use fluke_api::{ObjType, Sys};
use fluke_arch::Assembler;
use fluke_core::{Config, Kernel};
use fluke_user::proc::ChildProc;
use fluke_user::FlukeAsm;

use crate::common::{counted_loop, WorkloadRun};

/// Phase sizes. `paper()` approximates the published run length (~7s at
/// 200MHz); `quick()` is for tests.
#[derive(Debug, Clone)]
pub struct FlukeperfParams {
    /// Null system calls.
    pub nulls: u32,
    /// Mutex lock/unlock pairs.
    pub mutex_pairs: u32,
    /// Condition-variable signals.
    pub cond_signals: u32,
    /// Small echo RPCs (64 bytes each way).
    pub small_rpcs: u32,
    /// Medium one-way sends.
    pub medium_sends: u32,
    /// Bytes per medium send.
    pub medium_size: u32,
    /// Large one-way sends.
    pub big_sends: u32,
    /// Bytes per large send.
    pub big_size: u32,
    /// `region_search` sweeps.
    pub searches: u32,
    /// Pages per sweep.
    pub search_pages: u32,
}

impl FlukeperfParams {
    /// Full-size run approximating the paper's (≈5-7 simulated seconds).
    pub fn paper() -> Self {
        FlukeperfParams {
            nulls: 300_000,
            mutex_pairs: 300_000,
            cond_signals: 150_000,
            small_rpcs: 150_000,
            medium_sends: 2_000,
            medium_size: 64 << 10,
            big_sends: 8,
            big_size: 1_536 << 10,
            searches: 170,
            search_pages: 300,
        }
    }

    /// Scaled-down run for tests (finishes in well under a second).
    pub fn quick() -> Self {
        FlukeperfParams {
            nulls: 500,
            mutex_pairs: 500,
            cond_signals: 300,
            small_rpcs: 200,
            medium_sends: 6,
            medium_size: 64 << 10,
            big_sends: 1,
            big_size: 256 << 10,
            searches: 4,
            search_pages: 50,
        }
    }
}

// Client-space layout.
const C_MEM: u32 = 0x0020_0000;
const C_CTR: u32 = C_MEM + 0x100; // loop counter cells
const C_SMALL: u32 = C_MEM + 0x1000; // 64B RPC buffers
const C_REPLY: u32 = C_MEM + 0x1100;
const C_BIG: u32 = C_MEM + 0x10_000; // up to 1.5MB send buffer
const SEARCH_BASE: u32 = 0x0500_0000; // swept (empty) range

// Server-space layout.
const S_MEM: u32 = 0x0010_0000;
const S_BUF: u32 = S_MEM + 0x10_000;

/// Build flukeperf on a fresh kernel with the given configuration.
pub fn build(cfg: Config, p: &FlukeperfParams) -> WorkloadRun {
    let mut k = Kernel::new(cfg);
    let big = p.big_size.max(p.medium_size);

    // Server process: two ports (echo RPCs, sink for one-way sends).
    let mut server = ChildProc::with_mem(&mut k, S_MEM, 0x8000);
    k.grant_pages(server.space, S_BUF, big + 0x1000, true);
    let h_rpc_port = server.alloc_obj();
    let h_sink_port = server.alloc_obj();
    let rpc_port = k.loader_create(server.space, h_rpc_port, ObjType::Port);
    let sink_port = k.loader_create(server.space, h_sink_port, ObjType::Port);

    // Client process.
    let mut client = ChildProc::with_mem(&mut k, C_MEM, 0x8000);
    k.grant_pages(client.space, C_BIG, big + 0x1000, true);
    let h_mutex = client.alloc_obj();
    let h_cond = client.alloc_obj();
    let h_rpc_ref = client.alloc_obj();
    let h_sink_ref = client.alloc_obj();
    k.loader_ref(client.space, h_rpc_ref, rpc_port);
    k.loader_ref(client.space, h_sink_ref, sink_port);

    // Echo server: receive up to 64, reply with the same buffer.
    let mut a = Assembler::new("flukeperf-echo");
    a.label("loop");
    a.server_wait_receive(h_rpc_port, S_BUF, 64);
    a.server_ack_send(S_BUF, 64);
    a.jmp("loop");
    let echo = server.start(&mut k, a.finish(), 9);

    // Sink server: swallow whole messages, drop the connection, repeat.
    let mut a = Assembler::new("flukeperf-sink");
    a.label("loop");
    a.server_wait_receive(h_sink_port, S_BUF, big);
    a.sys(Sys::IpcServerDisconnect);
    a.jmp("loop");
    let sink = server.start(&mut k, a.finish(), 9);
    let _ = (echo, sink);

    // The client: all phases in order.
    let mut a = Assembler::new("flukeperf");
    a.sys_h(Sys::MutexCreate, h_mutex);
    a.sys_h(Sys::CondCreate, h_cond);
    if p.nulls > 0 {
        counted_loop(&mut a, "nulls", C_CTR, p.nulls, |a| {
            a.sys(Sys::SysNull);
            a.compute(50); // inter-call application work
        });
    }
    if p.mutex_pairs > 0 {
        counted_loop(&mut a, "mutexes", C_CTR + 4, p.mutex_pairs, |a| {
            a.mutex_lock(h_mutex);
            a.compute(100); // critical-section work
            a.mutex_unlock(h_mutex);
        });
    }
    if p.cond_signals > 0 {
        counted_loop(&mut a, "conds", C_CTR + 8, p.cond_signals, |a| {
            a.cond_signal(h_cond);
            a.compute(100);
        });
    }
    if p.small_rpcs > 0 {
        counted_loop(&mut a, "rpcs", C_CTR + 12, p.small_rpcs, |a| {
            a.client_rpc(h_rpc_ref, C_SMALL, 64, C_REPLY, 64);
            a.compute(3_000); // request construction / reply processing
        });
    }
    if p.medium_sends > 0 {
        let size = p.medium_size;
        counted_loop(&mut a, "mediums", C_CTR + 16, p.medium_sends, move |a| {
            a.client_connect_send(h_sink_ref, C_BIG, size);
            a.client_disconnect();
        });
    }
    if p.big_sends > 0 {
        let size = p.big_size;
        counted_loop(&mut a, "bigs", C_CTR + 20, p.big_sends, move |a| {
            a.client_connect_send(h_sink_ref, C_BIG, size);
            a.client_disconnect();
        });
    }
    if p.searches > 0 {
        let limit = SEARCH_BASE + p.search_pages * fluke_api::abi::PAGE_SIZE;
        counted_loop(&mut a, "searches", C_CTR + 24, p.searches, move |a| {
            a.movi(fluke_api::abi::ARG_HANDLE, 0);
            a.movi(fluke_api::abi::ARG_VAL, SEARCH_BASE);
            a.movi(fluke_api::abi::ARG_COUNT, limit);
            a.sys(Sys::RegionSearch);
        });
    }
    a.halt();
    let main = client.start(&mut k, a.finish(), 8);

    WorkloadRun {
        kernel: k,
        main_threads: vec![main],
        label: "flukeperf",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn quick_flukeperf_completes_on_every_configuration() {
        for cfg in Config::all_five() {
            let label = cfg.label;
            let run = build(cfg, &FlukeperfParams::quick());
            let res = run_workload(run, 5_000_000_000);
            assert!(res.elapsed > 0, "{label}: no time elapsed");
            assert!(
                res.stats.ipc_messages >= 200,
                "{label}: too few messages ({})",
                res.stats.ipc_messages
            );
            assert!(res.stats.ctx_switches > 400, "{label}: too few switches");
        }
    }

    #[test]
    fn interrupt_model_not_slower_on_flukeperf() {
        // The paper's headline flukeperf effect: the interrupt model saves
        // kernel-register save/restore on every context switch.
        let np = run_workload(
            build(Config::process_np(), &FlukeperfParams::quick()),
            5_000_000_000,
        );
        let int_np = run_workload(
            build(Config::interrupt_np(), &FlukeperfParams::quick()),
            5_000_000_000,
        );
        assert!(
            int_np.elapsed < np.elapsed,
            "interrupt {} !< process {}",
            int_np.elapsed,
            np.elapsed
        );
    }
}

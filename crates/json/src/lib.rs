//! A small, dependency-free JSON library.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! an external JSON crate. This module provides the subset the repo
//! actually needs — a [`Json`] value tree, a compact writer, and a strict
//! parser — for checkpoint persistence and the ktrace exporters.
//!
//! Numbers are stored as `f64`. Integer helpers assert the value is
//! exactly representable (|n| ≤ 2^53), which covers every quantity the
//! simulator produces (cycle counts, byte counts, register words).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are kept sorted (`BTreeMap`) so output is
/// deterministic — important for trace diffing and golden tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Insert a key into an object value (panics on non-objects).
    pub fn set(&mut self, key: &str, val: Json) -> &mut Json {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), val);
                self
            }
            _ => panic!("Json::set on non-object"),
        }
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer payload; `None` if not a number or not an exact integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// `as_u64` narrowed to u32.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// Build from an unsigned integer, asserting exact representability.
    pub fn from_u64(n: u64) -> Json {
        assert!(
            n <= (1u64 << 53),
            "integer {n} exceeds exact f64 range for JSON"
        );
        Json::Num(n as f64)
    }

    /// Build from a u32 (always exact).
    pub fn from_u32(n: u32) -> Json {
        Json::Num(n as f64)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. The whole input must be consumed.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

/// Compact serialization; `Json::to_string()` comes from this impl.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, val: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our data;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            at: start,
            msg: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let mut obj = Json::obj();
        obj.set("name", Json::Str("fluke \"kernel\"\n".into()));
        obj.set("cycles", Json::from_u64(8_000_000_000));
        obj.set("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let mut inner = Json::obj();
        inner.set("x", Json::from_u32(42));
        obj.set("inner", inner);
        let text = obj.to_string();
        assert_eq!(Json::parse(&text).unwrap(), obj);
    }

    #[test]
    fn integers_round_trip_exactly() {
        for n in [0u64, 1, 4096, u32::MAX as u64, (1 << 53)] {
            let j = Json::from_u64(n);
            let back = Json::parse(&j.to_string()).unwrap();
            assert_eq!(back.as_u64(), Some(n));
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5 , \"\\u0041\\t\" ] } ").unwrap();
        let arr = v.get("a").unwrap().items().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("A\t"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"unterminated", "tru", "{\"a\":}", "1 2"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn object_keys_are_deterministic() {
        let mut a = Json::obj();
        a.set("zeta", Json::Num(1.0));
        a.set("alpha", Json::Num(2.0));
        assert_eq!(a.to_string(), "{\"alpha\":2,\"zeta\":1}");
    }
}

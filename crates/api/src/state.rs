//! Exportable object state frames.
//!
//! `get_state` serializes an object's complete user-relevant state into a
//! flat array of 32-bit words in the caller's memory; `set_state` restores
//! from the same encoding. The word encoding — rather than an opaque kernel
//! blob — is what lets *ordinary user-mode programs* implement
//! checkpointing, migration and debugging (paper §4.1): a checkpointer can
//! save and restore frames without interpreting them.
//!
//! Note what is **absent** from [`ThreadStateFrame`]: any record of wait
//! queues or in-kernel progress. A thread blocked in `mutex_lock` is
//! represented purely by registers that say "about to call `mutex_lock`";
//! restoring it re-executes the call and re-queues the thread. The frame is
//! complete *because* the API is atomic.

use fluke_arch::{ProgramId, UserRegs};

use crate::error::ErrorCode;

/// Number of words in an encoded [`ThreadStateFrame`].
pub const THREAD_FRAME_WORDS: usize = 18;
/// Maximum words in any object state frame (sizing for user buffers).
pub const MAX_FRAME_WORDS: usize = THREAD_FRAME_WORDS;

/// The complete exportable state of a Thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadStateFrame {
    /// The user-visible register file — the thread's entire continuation.
    pub regs: UserRegs,
    /// The program image the thread executes (the analogue of the text
    /// segment a real checkpointer would re-map).
    pub program: ProgramId,
    /// Handle (virtual address, as last attached) of the Space the thread
    /// runs in; 0 if none has been attached yet.
    pub space_token: u32,
    /// Scheduling priority (higher runs first).
    pub priority: u32,
    /// Whether the thread is runnable (1) or stopped (0).
    pub runnable: u32,
    /// Informational IPC phase tag (see `fluke-core`); connections do not
    /// survive restore — like real migrators, managers re-establish them.
    pub ipc_phase: u32,
}

impl ThreadStateFrame {
    /// Encode into the flat word format written to user memory.
    pub fn to_words(&self) -> [u32; THREAD_FRAME_WORDS] {
        let mut w = [0u32; THREAD_FRAME_WORDS];
        w[..8].copy_from_slice(&self.regs.gpr);
        w[8] = self.regs.eip;
        w[9] = self.regs.eflags;
        w[10] = self.regs.pr[0];
        w[11] = self.regs.pr[1];
        w[12] = self.program.0 as u32;
        w[13] = (self.program.0 >> 32) as u32;
        w[14] = self.space_token;
        w[15] = self.priority;
        w[16] = self.runnable;
        w[17] = self.ipc_phase;
        w
    }

    /// Decode from the flat word format.
    pub fn from_words(w: &[u32]) -> Result<Self, ErrorCode> {
        if w.len() < THREAD_FRAME_WORDS {
            return Err(ErrorCode::BufferTooSmall);
        }
        let mut regs = UserRegs::new();
        regs.gpr.copy_from_slice(&w[..8]);
        regs.eip = w[8];
        regs.eflags = w[9];
        regs.pr = [w[10], w[11]];
        Ok(ThreadStateFrame {
            regs,
            program: ProgramId(w[12] as u64 | ((w[13] as u64) << 32)),
            space_token: w[14],
            priority: w[15],
            runnable: w[16],
            ipc_phase: w[17],
        })
    }
}

/// Exportable state of a Mutex: just whether it is locked. The wait queue
/// is *not* state — blocked lockers are each represented by their own
/// registers and re-queue themselves when restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutexStateFrame {
    /// 1 if locked, 0 if free.
    pub locked: u32,
}

/// Exportable state of a Cond (none: waiters carry their own state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CondStateFrame {
    /// Reserved, always 0.
    pub reserved: u32,
}

/// Exportable state of a Mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingStateFrame {
    /// Destination base address in the mapping's space.
    pub base: u32,
    /// Length in bytes.
    pub size: u32,
    /// Handle of the source Region as named at creation time.
    pub region_token: u32,
    /// Offset into the source region.
    pub offset: u32,
}

/// Exportable state of a Region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionStateFrame {
    /// Base address of the exported range in the owning space.
    pub base: u32,
    /// Length in bytes.
    pub size: u32,
    /// Handle of the keeper Port (0 = none): hard faults on memory imported
    /// from this region become exception IPC to this port.
    pub keeper_token: u32,
}

/// Exportable state of a Port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortStateFrame {
    /// Handle of the Portset this port is a member of (0 = none).
    pub pset_token: u32,
}

/// Exportable state of a Portset (none beyond its existence; membership is
/// recorded on each Port).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PsetStateFrame {
    /// Reserved, always 0.
    pub reserved: u32,
}

/// Exportable state of a Space (none beyond its existence; its contents are
/// enumerable with `region_search` and its memory with Mapping frames).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStateFrame {
    /// Reserved, always 0.
    pub reserved: u32,
}

/// Exportable state of a Reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefStateFrame {
    /// Handle of the referenced object as named when the reference was
    /// pointed (0 = null reference).
    pub target_token: u32,
}

/// Any object's state frame, tagged by type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjStateFrame {
    /// Mutex state.
    Mutex(MutexStateFrame),
    /// Cond state.
    Cond(CondStateFrame),
    /// Mapping state.
    Mapping(MappingStateFrame),
    /// Region state.
    Region(RegionStateFrame),
    /// Port state.
    Port(PortStateFrame),
    /// Portset state.
    Pset(PsetStateFrame),
    /// Space state.
    Space(SpaceStateFrame),
    /// Thread state.
    Thread(ThreadStateFrame),
    /// Reference state.
    Ref(RefStateFrame),
}

impl ObjStateFrame {
    /// Encode to the flat word format.
    pub fn to_words(&self) -> Vec<u32> {
        match self {
            ObjStateFrame::Mutex(f) => vec![f.locked],
            ObjStateFrame::Cond(f) => vec![f.reserved],
            ObjStateFrame::Mapping(f) => vec![f.base, f.size, f.region_token, f.offset],
            ObjStateFrame::Region(f) => vec![f.base, f.size, f.keeper_token],
            ObjStateFrame::Port(f) => vec![f.pset_token],
            ObjStateFrame::Pset(f) => vec![f.reserved],
            ObjStateFrame::Space(f) => vec![f.reserved],
            ObjStateFrame::Thread(f) => f.to_words().to_vec(),
            ObjStateFrame::Ref(f) => vec![f.target_token],
        }
    }

    /// Decode the flat word format for an object of type `ty`.
    pub fn from_words(ty: crate::objtype::ObjType, w: &[u32]) -> Result<Self, ErrorCode> {
        use crate::objtype::ObjType;
        let need = Self::words_for(ty);
        if w.len() < need {
            return Err(ErrorCode::BufferTooSmall);
        }
        Ok(match ty {
            ObjType::Mutex => ObjStateFrame::Mutex(MutexStateFrame { locked: w[0] }),
            ObjType::Cond => ObjStateFrame::Cond(CondStateFrame { reserved: w[0] }),
            ObjType::Mapping => ObjStateFrame::Mapping(MappingStateFrame {
                base: w[0],
                size: w[1],
                region_token: w[2],
                offset: w[3],
            }),
            ObjType::Region => ObjStateFrame::Region(RegionStateFrame {
                base: w[0],
                size: w[1],
                keeper_token: w[2],
            }),
            ObjType::Port => ObjStateFrame::Port(PortStateFrame { pset_token: w[0] }),
            ObjType::Portset => ObjStateFrame::Pset(PsetStateFrame { reserved: w[0] }),
            ObjType::Space => ObjStateFrame::Space(SpaceStateFrame { reserved: w[0] }),
            ObjType::Thread => ObjStateFrame::Thread(ThreadStateFrame::from_words(w)?),
            ObjType::Reference => ObjStateFrame::Ref(RefStateFrame { target_token: w[0] }),
        })
    }

    /// Number of words in the frame of an object of type `ty`.
    pub fn words_for(ty: crate::objtype::ObjType) -> usize {
        use crate::objtype::ObjType;
        match ty {
            ObjType::Mutex
            | ObjType::Cond
            | ObjType::Port
            | ObjType::Portset
            | ObjType::Space
            | ObjType::Reference => 1,
            ObjType::Mapping => 4,
            ObjType::Region => 3,
            ObjType::Thread => THREAD_FRAME_WORDS,
        }
    }

    /// The object type this frame belongs to.
    pub fn obj_type(&self) -> crate::objtype::ObjType {
        use crate::objtype::ObjType;
        match self {
            ObjStateFrame::Mutex(_) => ObjType::Mutex,
            ObjStateFrame::Cond(_) => ObjType::Cond,
            ObjStateFrame::Mapping(_) => ObjType::Mapping,
            ObjStateFrame::Region(_) => ObjType::Region,
            ObjStateFrame::Port(_) => ObjType::Port,
            ObjStateFrame::Pset(_) => ObjType::Portset,
            ObjStateFrame::Space(_) => ObjType::Space,
            ObjStateFrame::Thread(_) => ObjType::Thread,
            ObjStateFrame::Ref(_) => ObjType::Reference,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objtype::ObjType;
    use fluke_arch::Reg;

    #[test]
    fn thread_frame_word_roundtrip() {
        let mut regs = UserRegs::new();
        regs.set(Reg::Eax, 77);
        regs.set(Reg::Esi, 0x8000_1800);
        regs.eip = 42;
        regs.eflags = 3;
        regs.pr = [111, 222];
        let f = ThreadStateFrame {
            regs,
            program: ProgramId(0xdead_beef_cafe),
            space_token: 0x7000,
            priority: 5,
            runnable: 1,
            ipc_phase: 2,
        };
        let w = f.to_words();
        let back = ThreadStateFrame::from_words(&w).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn thread_frame_too_small_rejected() {
        let w = [0u32; THREAD_FRAME_WORDS - 1];
        assert_eq!(
            ThreadStateFrame::from_words(&w).unwrap_err(),
            ErrorCode::BufferTooSmall
        );
    }

    #[test]
    fn all_object_frames_roundtrip_through_words() {
        let frames = vec![
            ObjStateFrame::Mutex(MutexStateFrame { locked: 1 }),
            ObjStateFrame::Cond(CondStateFrame::default()),
            ObjStateFrame::Mapping(MappingStateFrame {
                base: 0x10000,
                size: 0x4000,
                region_token: 0x500,
                offset: 0x2000,
            }),
            ObjStateFrame::Region(RegionStateFrame {
                base: 0x2000_0000,
                size: 1 << 24,
                keeper_token: 0x600,
            }),
            ObjStateFrame::Port(PortStateFrame { pset_token: 0x700 }),
            ObjStateFrame::Pset(PsetStateFrame::default()),
            ObjStateFrame::Space(SpaceStateFrame::default()),
            ObjStateFrame::Ref(RefStateFrame {
                target_token: 0x800,
            }),
        ];
        for f in frames {
            let ty = f.obj_type();
            let w = f.to_words();
            assert_eq!(w.len(), ObjStateFrame::words_for(ty));
            let back = ObjStateFrame::from_words(ty, &w).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn frame_word_counts_fit_max() {
        for ty in ObjType::ALL {
            assert!(ObjStateFrame::words_for(ty) <= MAX_FRAME_WORDS);
        }
    }

    #[test]
    fn wait_queues_are_not_thread_state() {
        // The frame has no field for a wait-queue position: blocked threads
        // are fully described by their registers. This test documents that
        // invariant by exhaustively checking the encoded width.
        assert_eq!(THREAD_FRAME_WORDS, 18);
    }
}

//! The kernel entrypoint table — the reproduction of the paper's Table 1.
//!
//! The Fluke API comprises 107 entrypoints in four classes:
//!
//! * **Trivial** — always run to completion without ever sleeping
//!   (e.g. [`Sys::ThreadSelf`], the paper's `getpid` analogue).
//! * **Short** — usually complete immediately but may encounter a page fault
//!   (every handle is a virtual address, so merely *naming* an object can
//!   fault); if so the call rolls back and restarts transparently.
//! * **Long** — expected to sleep indefinitely (e.g. [`Sys::MutexLock`]),
//!   but with no intermediate state: interruption simply restarts the call.
//! * **Multi-stage** — can be interrupted at intermediate points, with the
//!   partial progress recorded *in the caller's registers* (the IPC family,
//!   [`Sys::CondWait`], and [`Sys::RegionSearch`]).
//!
//! Five entrypoints (`*More`) exist primarily as restart points for
//! interrupted multi-stage operations; per the paper §4.4 they are
//! nevertheless directly callable and occasionally directly useful.

/// Table 1 classification of an entrypoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysClass {
    /// Always runs to completion without sleeping.
    Trivial,
    /// Usually immediate; may roll back and restart on a page fault.
    Short,
    /// May sleep indefinitely; restarts from the beginning if interrupted.
    Long,
    /// May sleep indefinitely and be interrupted at intermediate points,
    /// with progress recorded in user registers.
    MultiStage,
}

impl SysClass {
    /// Display name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            SysClass::Trivial => "Trivial",
            SysClass::Short => "Short",
            SysClass::Long => "Long",
            SysClass::MultiStage => "Multi-stage",
        }
    }
}

/// Which part of the API an entrypoint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Mutex object operations.
    Mutex,
    /// Condition variable operations.
    Cond,
    /// Mapping (imported memory) operations.
    Mapping,
    /// Region (exported memory) operations.
    Region,
    /// Port (server IPC endpoint) operations.
    Port,
    /// Portset operations.
    Pset,
    /// Space operations.
    Space,
    /// Thread operations.
    Thread,
    /// Reference (cross-process handle) operations.
    Ref,
    /// Inter-process communication.
    Ipc,
    /// Miscellaneous kernel services.
    Misc,
}

/// Static description of one kernel entrypoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SysDesc {
    /// The entrypoint this row describes.
    pub sys: Sys,
    /// The conventional name (`fluke_mutex_lock` style, without the prefix).
    pub name: &'static str,
    /// Table 1 class.
    pub class: SysClass,
    /// API family.
    pub family: Family,
    /// Whether this entrypoint exists primarily as a restart point for an
    /// interrupted multi-stage operation (paper §4.4 counts five of these).
    pub restart_point: bool,
}

macro_rules! syscalls {
    ($( $variant:ident => ($name:literal, $class:ident, $family:ident, $restart:literal) ),* $(,)?) => {
        /// A kernel entrypoint number, passed in `eax` at the trap
        /// instruction. Discriminants are dense from zero and index
        /// [`SYSCALLS`].
        #[allow(missing_docs)]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u32)]
        pub enum Sys { $($variant),* }

        /// Descriptor for every entrypoint, indexed by entrypoint number.
        pub const SYSCALLS: &[SysDesc] = &[
            $( SysDesc {
                sys: Sys::$variant,
                name: $name,
                class: SysClass::$class,
                family: Family::$family,
                restart_point: $restart,
            } ),*
        ];
    };
}

syscalls! {
    // ---- Common object operations (six per primitive type, all Short:
    // handles are virtual addresses, so each can fault and restart). ----
    MutexCreate => ("mutex_create", Short, Mutex, false),
    MutexDestroy => ("mutex_destroy", Short, Mutex, false),
    MutexGetState => ("mutex_get_state", Short, Mutex, false),
    MutexSetState => ("mutex_set_state", Short, Mutex, false),
    MutexMove => ("mutex_move", Short, Mutex, false),
    MutexReference => ("mutex_reference", Short, Mutex, false),

    CondCreate => ("cond_create", Short, Cond, false),
    CondDestroy => ("cond_destroy", Short, Cond, false),
    CondGetState => ("cond_get_state", Short, Cond, false),
    CondSetState => ("cond_set_state", Short, Cond, false),
    CondMove => ("cond_move", Short, Cond, false),
    CondReference => ("cond_reference", Short, Cond, false),

    MappingCreate => ("mapping_create", Short, Mapping, false),
    MappingDestroy => ("mapping_destroy", Short, Mapping, false),
    MappingGetState => ("mapping_get_state", Short, Mapping, false),
    MappingSetState => ("mapping_set_state", Short, Mapping, false),
    MappingMove => ("mapping_move", Short, Mapping, false),
    MappingReference => ("mapping_reference", Short, Mapping, false),

    RegionCreate => ("region_create", Short, Region, false),
    RegionDestroy => ("region_destroy", Short, Region, false),
    RegionGetState => ("region_get_state", Short, Region, false),
    RegionSetState => ("region_set_state", Short, Region, false),
    RegionMove => ("region_move", Short, Region, false),
    RegionReference => ("region_reference", Short, Region, false),

    PortCreate => ("port_create", Short, Port, false),
    PortDestroy => ("port_destroy", Short, Port, false),
    PortGetState => ("port_get_state", Short, Port, false),
    PortSetState => ("port_set_state", Short, Port, false),
    PortMove => ("port_move", Short, Port, false),
    PortReference => ("port_reference", Short, Port, false),

    PsetCreate => ("pset_create", Short, Pset, false),
    PsetDestroy => ("pset_destroy", Short, Pset, false),
    PsetGetState => ("pset_get_state", Short, Pset, false),
    PsetSetState => ("pset_set_state", Short, Pset, false),
    PsetMove => ("pset_move", Short, Pset, false),
    PsetReference => ("pset_reference", Short, Pset, false),

    SpaceCreate => ("space_create", Short, Space, false),
    SpaceDestroy => ("space_destroy", Short, Space, false),
    SpaceGetState => ("space_get_state", Short, Space, false),
    SpaceSetState => ("space_set_state", Short, Space, false),
    SpaceMove => ("space_move", Short, Space, false),
    SpaceReference => ("space_reference", Short, Space, false),

    ThreadCreate => ("thread_create", Short, Thread, false),
    ThreadDestroy => ("thread_destroy", Short, Thread, false),
    ThreadGetState => ("thread_get_state", Short, Thread, false),
    ThreadSetState => ("thread_set_state", Short, Thread, false),
    ThreadMove => ("thread_move", Short, Thread, false),
    ThreadReference => ("thread_reference", Short, Thread, false),

    RefCreate => ("ref_create", Short, Ref, false),
    RefDestroy => ("ref_destroy", Short, Ref, false),
    RefGetState => ("ref_get_state", Short, Ref, false),
    RefSetState => ("ref_set_state", Short, Ref, false),
    RefMove => ("ref_move", Short, Ref, false),
    RefReference => ("ref_reference", Short, Ref, false),

    // ---- Type-specific short operations. ----
    MutexTrylock => ("mutex_trylock", Short, Mutex, false),
    MutexUnlock => ("mutex_unlock", Short, Mutex, false),
    CondSignal => ("cond_signal", Short, Cond, false),
    CondBroadcast => ("cond_broadcast", Short, Cond, false),
    ThreadInterrupt => ("thread_interrupt", Short, Thread, false),
    ThreadSchedule => ("thread_schedule", Short, Thread, false),
    RegionProtect => ("region_protect", Short, Region, false),
    MappingProtect => ("mapping_protect", Short, Mapping, false),
    RefCompare => ("ref_compare", Short, Ref, false),
    IpcClientDisconnect => ("ipc_client_disconnect", Short, Ipc, false),
    IpcServerDisconnect => ("ipc_server_disconnect", Short, Ipc, false),
    IpcClientAlert => ("ipc_client_alert", Short, Ipc, false),
    IpcServerAlert => ("ipc_server_alert", Short, Ipc, false),
    RegionPopulate => ("region_populate", Short, Region, false),

    // ---- Trivial operations: never touch user memory, never sleep. ----
    ThreadSelf => ("thread_self", Trivial, Thread, false),
    SysNull => ("sys_null", Trivial, Misc, false),
    SysVersion => ("sys_version", Trivial, Misc, false),
    SysClock => ("sys_clock", Trivial, Misc, false),
    SysCpuId => ("sys_cpu_id", Trivial, Misc, false),
    SysYield => ("sys_yield", Trivial, Misc, false),
    SysTrace => ("sys_trace", Trivial, Misc, false),
    SysStats => ("sys_stats", Trivial, Misc, false),

    // ---- Long operations: sleep indefinitely, restart from the top. ----
    MutexLock => ("mutex_lock", Long, Mutex, false),
    PortWait => ("port_wait", Long, Port, false),
    PsetWait => ("pset_wait", Long, Pset, false),
    ThreadWait => ("thread_wait", Long, Thread, false),
    ThreadSleep => ("thread_sleep", Long, Thread, false),
    IpcClientConnect => ("ipc_client_connect", Long, Ipc, false),
    SpaceWaitThreads => ("space_wait_threads", Long, Space, false),
    SchedDonate => ("sched_donate", Long, Thread, false),

    // ---- Multi-stage operations: interruptible at intermediate points,
    // progress recorded in user registers. ----
    CondWait => ("cond_wait", MultiStage, Cond, false),
    RegionSearch => ("region_search", MultiStage, Region, false),

    IpcClientConnectSend => ("ipc_client_connect_send", MultiStage, Ipc, false),
    IpcClientSend => ("ipc_client_send", MultiStage, Ipc, false),
    IpcClientReceive => ("ipc_client_receive", MultiStage, Ipc, false),
    IpcClientSendOverReceive => ("ipc_client_send_over_receive", MultiStage, Ipc, false),
    IpcClientConnectSendOverReceive =>
        ("ipc_client_connect_send_over_receive", MultiStage, Ipc, false),
    IpcClientAckReceive => ("ipc_client_ack_receive", MultiStage, Ipc, false),
    IpcClientSendMore => ("ipc_client_send_more", MultiStage, Ipc, true),
    IpcClientReceiveMore => ("ipc_client_receive_more", MultiStage, Ipc, true),

    IpcServerWaitReceive => ("ipc_server_wait_receive", MultiStage, Ipc, false),
    IpcServerReceive => ("ipc_server_receive", MultiStage, Ipc, false),
    IpcServerSend => ("ipc_server_send", MultiStage, Ipc, false),
    IpcServerSendWaitReceive => ("ipc_server_send_wait_receive", MultiStage, Ipc, false),
    IpcServerAckSend => ("ipc_server_ack_send", MultiStage, Ipc, false),
    IpcServerAckSendWaitReceive =>
        ("ipc_server_ack_send_wait_receive", MultiStage, Ipc, false),
    IpcServerSendOverReceive => ("ipc_server_send_over_receive", MultiStage, Ipc, false),
    IpcServerSendMore => ("ipc_server_send_more", MultiStage, Ipc, true),
    IpcServerReceiveMore => ("ipc_server_receive_more", MultiStage, Ipc, true),

    IpcSendOneway => ("ipc_send_oneway", MultiStage, Ipc, false),
    IpcWaitReceiveOneway => ("ipc_wait_receive_oneway", MultiStage, Ipc, false),
    IpcReceiveOneway => ("ipc_receive_oneway", MultiStage, Ipc, false),
    IpcSendOnewayMore => ("ipc_send_oneway_more", MultiStage, Ipc, true),
}

impl Sys {
    /// The entrypoint number (the value user code loads into `eax`).
    #[inline]
    pub fn num(self) -> u32 {
        self as u32
    }

    /// Decode an entrypoint number from `eax`.
    pub fn from_u32(n: u32) -> Option<Sys> {
        SYSCALLS.get(n as usize).map(|d| d.sys)
    }

    /// The static descriptor for this entrypoint.
    pub fn desc(self) -> &'static SysDesc {
        &SYSCALLS[self.num() as usize]
    }

    /// The entrypoint's Table 1 class.
    pub fn class(self) -> SysClass {
        self.desc().class
    }

    /// The entrypoint's conventional name.
    pub fn name(self) -> &'static str {
        self.desc().name
    }
}

/// Count entrypoints in each Table 1 class:
/// `(trivial, short, long, multi-stage)`.
pub fn class_counts() -> (usize, usize, usize, usize) {
    let mut t = (0, 0, 0, 0);
    for d in SYSCALLS {
        match d.class {
            SysClass::Trivial => t.0 += 1,
            SysClass::Short => t.1 += 1,
            SysClass::Long => t.2 += 1,
            SysClass::MultiStage => t.3 += 1,
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_counts_match_paper() {
        // Paper Table 1: 8 trivial (7%), 68 short (64%), 8 long (7%),
        // 23 multi-stage (22%); 107 total.
        let (trivial, short, long, multi) = class_counts();
        assert_eq!(trivial, 8);
        assert_eq!(short, 68);
        assert_eq!(long, 8);
        assert_eq!(multi, 23);
        assert_eq!(SYSCALLS.len(), 107);
    }

    #[test]
    fn table_order_matches_discriminants() {
        for (i, d) in SYSCALLS.iter().enumerate() {
            assert_eq!(d.sys.num() as usize, i, "table out of order at {}", d.name);
        }
    }

    #[test]
    fn from_u32_roundtrip() {
        assert_eq!(Sys::from_u32(Sys::MutexLock.num()), Some(Sys::MutexLock));
        assert_eq!(Sys::from_u32(107), None);
        assert_eq!(Sys::from_u32(u32::MAX), None);
    }

    #[test]
    fn exactly_five_restart_point_entrypoints() {
        // Paper §4.4: five system calls are rarely called directly and
        // usually serve as restart points for interrupted operations.
        let restart: Vec<_> = SYSCALLS.iter().filter(|d| d.restart_point).collect();
        assert_eq!(restart.len(), 5);
        for d in restart {
            assert_eq!(d.class, SysClass::MultiStage);
            assert!(d.name.ends_with("_more"));
        }
    }

    #[test]
    fn multi_stage_calls_are_ipc_except_cond_wait_and_region_search() {
        // Paper §4.2: "Except for cond_wait and region_search ... all of
        // the multi-stage calls in the Fluke API are IPC-related."
        for d in SYSCALLS.iter().filter(|d| d.class == SysClass::MultiStage) {
            if d.family != Family::Ipc {
                assert!(
                    d.sys == Sys::CondWait || d.sys == Sys::RegionSearch,
                    "unexpected non-IPC multi-stage call {}",
                    d.name
                );
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SYSCALLS.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SYSCALLS.len());
    }

    #[test]
    fn every_family_is_populated() {
        use std::collections::HashSet;
        let fams: HashSet<_> = SYSCALLS.iter().map(|d| d.family).collect();
        assert_eq!(fams.len(), 11, "all 11 families appear in the table");
    }

    #[test]
    fn class_helpers() {
        assert_eq!(Sys::ThreadSelf.class(), SysClass::Trivial);
        assert_eq!(Sys::MutexTrylock.class(), SysClass::Short);
        assert_eq!(Sys::MutexLock.class(), SysClass::Long);
        assert_eq!(Sys::CondWait.class(), SysClass::MultiStage);
        assert_eq!(Sys::MutexLock.name(), "mutex_lock");
        assert_eq!(SysClass::MultiStage.name(), "Multi-stage");
    }
}

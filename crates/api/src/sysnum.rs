//! The kernel entrypoint table — the reproduction of the paper's Table 1.
//!
//! The Fluke API comprises the paper's 107 entrypoints (plus the
//! [`Sys::IpcSubmit`] batching extension) in four classes:
//!
//! * **Trivial** — always run to completion without ever sleeping
//!   (e.g. [`Sys::ThreadSelf`], the paper's `getpid` analogue).
//! * **Short** — usually complete immediately but may encounter a page fault
//!   (every handle is a virtual address, so merely *naming* an object can
//!   fault); if so the call rolls back and restarts transparently.
//! * **Long** — expected to sleep indefinitely (e.g. [`Sys::MutexLock`]),
//!   but with no intermediate state: interruption simply restarts the call.
//! * **Multi-stage** — can be interrupted at intermediate points, with the
//!   partial progress recorded *in the caller's registers* (the IPC family,
//!   [`Sys::CondWait`], and [`Sys::RegionSearch`]).
//!
//! Five entrypoints (`*More`) exist primarily as restart points for
//! interrupted multi-stage operations; per the paper §4.4 they are
//! nevertheless directly callable and occasionally directly useful.

/// Table 1 classification of an entrypoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SysClass {
    /// Always runs to completion without sleeping.
    Trivial,
    /// Usually immediate; may roll back and restart on a page fault.
    Short,
    /// May sleep indefinitely; restarts from the beginning if interrupted.
    Long,
    /// May sleep indefinitely and be interrupted at intermediate points,
    /// with progress recorded in user registers.
    MultiStage,
}

impl SysClass {
    /// All four classes in Table 1 order.
    pub const ALL: [SysClass; 4] = [
        SysClass::Trivial,
        SysClass::Short,
        SysClass::Long,
        SysClass::MultiStage,
    ];

    /// Dense index (position in [`SysClass::ALL`]), for class-keyed arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Display name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            SysClass::Trivial => "Trivial",
            SysClass::Short => "Short",
            SysClass::Long => "Long",
            SysClass::MultiStage => "Multi-stage",
        }
    }
}

/// Which part of the API an entrypoint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Mutex object operations.
    Mutex,
    /// Condition variable operations.
    Cond,
    /// Mapping (imported memory) operations.
    Mapping,
    /// Region (exported memory) operations.
    Region,
    /// Port (server IPC endpoint) operations.
    Port,
    /// Portset operations.
    Pset,
    /// Space operations.
    Space,
    /// Thread operations.
    Thread,
    /// Reference (cross-process handle) operations.
    Ref,
    /// Inter-process communication.
    Ipc,
    /// Miscellaneous kernel services.
    Misc,
}

impl Family {
    /// The primitive object type this family manages, for the nine
    /// families that each own one of the paper's nine object types.
    /// `Ipc` and `Misc` are not object families.
    pub const fn obj_type(self) -> Option<crate::ObjType> {
        use crate::ObjType as O;
        Some(match self {
            Family::Mutex => O::Mutex,
            Family::Cond => O::Cond,
            Family::Mapping => O::Mapping,
            Family::Region => O::Region,
            Family::Port => O::Port,
            Family::Pset => O::Portset,
            Family::Space => O::Space,
            Family::Thread => O::Thread,
            Family::Ref => O::Reference,
            Family::Ipc | Family::Misc => return None,
        })
    }
}

/// One of the six common operations every primitive object type
/// supports (paper §2: `create`, `destroy`, `get_state`, `set_state`,
/// `move`, `reference` — 9 types × 6 ops = 54 entrypoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommonOp {
    /// Create an object of the family's type at a virtual address.
    Create,
    /// Destroy the named object.
    Destroy,
    /// Marshal the object's exportable state into a user buffer.
    GetState,
    /// Install previously exported state.
    SetState,
    /// Rename the object to a new virtual address.
    Move,
    /// Point a Reference object at the target.
    Reference,
}

impl CommonOp {
    /// The op's conventional name suffix (`create`, `get_state`, …).
    pub fn name(self) -> &'static str {
        match self {
            CommonOp::Create => "create",
            CommonOp::Destroy => "destroy",
            CommonOp::GetState => "get_state",
            CommonOp::SetState => "set_state",
            CommonOp::Move => "move",
            CommonOp::Reference => "reference",
        }
    }
}

/// The set of standard argument registers an entrypoint reads, as a
/// bitmask (results and in-place parameter advances are not listed —
/// the mask describes the *input* signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArgRegs(pub u8);

impl ArgRegs {
    /// No argument registers (the Trivial no-argument calls).
    pub const NONE: ArgRegs = ArgRegs(0);
    /// `ebx` — object handle / selector ([`crate::abi::ARG_HANDLE`]).
    pub const HANDLE: ArgRegs = ArgRegs(1 << 0);
    /// `ecx` — count / window size ([`crate::abi::ARG_COUNT`]).
    pub const COUNT: ArgRegs = ArgRegs(1 << 1);
    /// `edx` — scalar value ([`crate::abi::ARG_VAL`]).
    pub const VAL: ArgRegs = ArgRegs(1 << 2);
    /// `esi` — send buffer pointer ([`crate::abi::ARG_SBUF`]).
    pub const SBUF: ArgRegs = ArgRegs(1 << 3);
    /// `edi` — receive buffer pointer ([`crate::abi::ARG_RBUF`]).
    pub const RBUF: ArgRegs = ArgRegs(1 << 4);

    /// Union of two masks.
    pub const fn union(self, other: ArgRegs) -> ArgRegs {
        ArgRegs(self.0 | other.0)
    }

    /// Whether every register in `other` is in this mask.
    pub const fn contains(self, other: ArgRegs) -> bool {
        self.0 & other.0 == other.0
    }

    /// Number of argument registers in the mask.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Conventional register names in the mask, in ABI order.
    pub fn names(self) -> Vec<&'static str> {
        [
            (ArgRegs::HANDLE, "ebx"),
            (ArgRegs::COUNT, "ecx"),
            (ArgRegs::VAL, "edx"),
            (ArgRegs::SBUF, "esi"),
            (ArgRegs::RBUF, "edi"),
        ]
        .into_iter()
        .filter(|&(bit, _)| self.contains(bit))
        .map(|(_, name)| name)
        .collect()
    }
}

/// Static description of one kernel entrypoint — the single source of
/// truth the kernel's handler table, the atomicity auditor, and the
/// trace classifiers are all derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SysDesc {
    /// The entrypoint this row describes.
    pub sys: Sys,
    /// The conventional name (`fluke_mutex_lock` style, without the prefix).
    pub name: &'static str,
    /// Table 1 class.
    pub class: SysClass,
    /// API family.
    pub family: Family,
    /// Whether this entrypoint exists primarily as a restart point for an
    /// interrupted multi-stage operation (paper §4.4 counts five of these).
    pub restart_point: bool,
    /// Argument registers read at entry.
    pub args: ArgRegs,
    /// Whether the call can block or be preempted in-kernel (exactly the
    /// Long and Multi-stage classes; Trivial and Short calls only ever
    /// stop on a page fault, which restarts them wholesale).
    pub may_block: bool,
    /// The entrypoint a blocked or preempted instance of this call leaves
    /// in `eax` as its restart continuation. Self-restarting calls (all
    /// Long calls, and multi-stage calls whose progress lives entirely in
    /// advanced parameter registers) name themselves. A call may also
    /// block with `eax` still naming itself before its first commit point
    /// — the auditor's allowed set at a block is `{sys, restart_target}`.
    pub restart_target: Sys,
    /// For the 54 common-object-operation entrypoints: which of the six
    /// ops this is (the handler table decodes family × op from here
    /// instead of 54 hand-written match arms).
    pub common_op: Option<CommonOp>,
}

/// Number of rows at the head of the table that are common object
/// operations (9 types × 6 ops, in `CommonOp` order within each family).
pub const COMMON_OP_ROWS: u32 = 54;

const fn common_op_of(s: Sys) -> Option<CommonOp> {
    let n = s as u32;
    if n >= COMMON_OP_ROWS {
        return None;
    }
    Some(match n % 6 {
        0 => CommonOp::Create,
        1 => CommonOp::Destroy,
        2 => CommonOp::GetState,
        3 => CommonOp::SetState,
        4 => CommonOp::Move,
        _ => CommonOp::Reference,
    })
}

/// Where an interrupted instance of each entrypoint restarts (see
/// [`SysDesc::restart_target`]). The non-self targets are the paper's
/// §4.3/§4.4 continuation rewrites: `cond_wait` sleeps as
/// `mutex_lock`, and each multi-stage IPC call records its partial
/// progress as the corresponding `*_more` restart point.
const fn restart_target_of(s: Sys) -> Sys {
    use Sys::*;
    match s {
        CondWait => MutexLock,
        IpcClientConnectSend
        | IpcClientSend
        | IpcClientSendOverReceive
        | IpcClientConnectSendOverReceive
        | IpcClientSendMore => IpcClientSendMore,
        IpcClientReceive | IpcClientAckReceive | IpcClientReceiveMore => IpcClientReceiveMore,
        IpcServerSend
        | IpcServerSendWaitReceive
        | IpcServerAckSend
        | IpcServerAckSendWaitReceive
        | IpcServerSendOverReceive
        | IpcServerSendMore => IpcServerSendMore,
        IpcServerReceive | IpcServerReceiveMore | IpcServerWaitReceive => IpcServerReceiveMore,
        IpcSendOneway | IpcSendOnewayMore => IpcSendOnewayMore,
        IpcWaitReceiveOneway | IpcReceiveOneway => IpcWaitReceiveOneway,
        _ => s,
    }
}

/// Input argument registers of each entrypoint (see [`SysDesc::args`]).
const fn args_of(s: Sys) -> ArgRegs {
    use Sys::*;
    const H: ArgRegs = ArgRegs::HANDLE;
    const C: ArgRegs = ArgRegs::COUNT;
    const V: ArgRegs = ArgRegs::VAL;
    const S: ArgRegs = ArgRegs::SBUF;
    const R: ArgRegs = ArgRegs::RBUF;
    match s {
        // Common ops: handle, plus state buffers or rename/target values.
        // Region/mapping creation carries geometry in the extra registers.
        RegionCreate => H.union(C).union(V).union(S),
        MappingCreate => H.union(C).union(V).union(S).union(R),
        _ => {
            if let Some(op) = common_op_of(s) {
                return match op {
                    CommonOp::Create | CommonOp::Destroy => H,
                    CommonOp::GetState | CommonOp::SetState => H.union(S).union(C),
                    CommonOp::Move | CommonOp::Reference => H.union(V),
                };
            }
            match s {
                MutexTrylock | MutexUnlock | MutexLock | CondSignal | CondBroadcast
                | ThreadInterrupt | ThreadSchedule | ThreadWait | SpaceWaitThreads
                | SchedDonate | PortWait | PsetWait | IpcClientConnect => H,
                CondWait | RegionProtect | MappingProtect | RefCompare => H.union(V),
                RegionPopulate => H.union(C).union(V),
                RegionSearch => H.union(C).union(V),
                SysStats => H.union(V).union(S),
                SysTrace => V,
                ThreadSelf | SysNull | SysVersion | SysClock | SysCpuId | SysYield
                | ThreadSleep | IpcClientDisconnect | IpcServerDisconnect | IpcClientAlert
                | IpcServerAlert => ArgRegs::NONE,
                IpcClientConnectSend => H.union(C).union(S),
                IpcClientConnectSendOverReceive => H.union(C).union(S).union(R),
                IpcClientSend | IpcClientSendMore => C.union(S),
                IpcClientSendOverReceive => C.union(S).union(R),
                IpcClientReceive | IpcClientAckReceive | IpcClientReceiveMore => C.union(R),
                IpcServerWaitReceive => H.union(C).union(R),
                IpcServerReceive | IpcServerReceiveMore => C.union(R),
                IpcServerSend | IpcServerAckSend | IpcServerSendMore => C.union(S),
                IpcServerSendWaitReceive
                | IpcServerAckSendWaitReceive
                | IpcServerSendOverReceive => C.union(S).union(R).union(V),
                IpcSendOneway | IpcSendOnewayMore => H.union(C).union(S),
                IpcWaitReceiveOneway | IpcReceiveOneway => H.union(C).union(R),
                // Batched submission: `esi` = descriptor ring, `ecx` = op
                // count, `edx` = ops already done (the restart cursor).
                IpcSubmit => C.union(V).union(S),
                _ => ArgRegs::NONE,
            }
        }
    }
}

macro_rules! syscalls {
    ($( $variant:ident => ($name:literal, $class:ident, $family:ident, $restart:literal) ),* $(,)?) => {
        /// A kernel entrypoint number, passed in `eax` at the trap
        /// instruction. Discriminants are dense from zero and index
        /// [`SYSCALLS`].
        #[allow(missing_docs)]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u32)]
        pub enum Sys { $($variant),* }

        /// Descriptor for every entrypoint, indexed by entrypoint number.
        pub const SYSCALLS: &[SysDesc] = &[
            $( SysDesc {
                sys: Sys::$variant,
                name: $name,
                class: SysClass::$class,
                family: Family::$family,
                restart_point: $restart,
                args: args_of(Sys::$variant),
                may_block: matches!(
                    SysClass::$class,
                    SysClass::Long | SysClass::MultiStage
                ),
                restart_target: restart_target_of(Sys::$variant),
                common_op: common_op_of(Sys::$variant),
            } ),*
        ];
    };
}

syscalls! {
    // ---- Common object operations (six per primitive type, all Short:
    // handles are virtual addresses, so each can fault and restart). ----
    MutexCreate => ("mutex_create", Short, Mutex, false),
    MutexDestroy => ("mutex_destroy", Short, Mutex, false),
    MutexGetState => ("mutex_get_state", Short, Mutex, false),
    MutexSetState => ("mutex_set_state", Short, Mutex, false),
    MutexMove => ("mutex_move", Short, Mutex, false),
    MutexReference => ("mutex_reference", Short, Mutex, false),

    CondCreate => ("cond_create", Short, Cond, false),
    CondDestroy => ("cond_destroy", Short, Cond, false),
    CondGetState => ("cond_get_state", Short, Cond, false),
    CondSetState => ("cond_set_state", Short, Cond, false),
    CondMove => ("cond_move", Short, Cond, false),
    CondReference => ("cond_reference", Short, Cond, false),

    MappingCreate => ("mapping_create", Short, Mapping, false),
    MappingDestroy => ("mapping_destroy", Short, Mapping, false),
    MappingGetState => ("mapping_get_state", Short, Mapping, false),
    MappingSetState => ("mapping_set_state", Short, Mapping, false),
    MappingMove => ("mapping_move", Short, Mapping, false),
    MappingReference => ("mapping_reference", Short, Mapping, false),

    RegionCreate => ("region_create", Short, Region, false),
    RegionDestroy => ("region_destroy", Short, Region, false),
    RegionGetState => ("region_get_state", Short, Region, false),
    RegionSetState => ("region_set_state", Short, Region, false),
    RegionMove => ("region_move", Short, Region, false),
    RegionReference => ("region_reference", Short, Region, false),

    PortCreate => ("port_create", Short, Port, false),
    PortDestroy => ("port_destroy", Short, Port, false),
    PortGetState => ("port_get_state", Short, Port, false),
    PortSetState => ("port_set_state", Short, Port, false),
    PortMove => ("port_move", Short, Port, false),
    PortReference => ("port_reference", Short, Port, false),

    PsetCreate => ("pset_create", Short, Pset, false),
    PsetDestroy => ("pset_destroy", Short, Pset, false),
    PsetGetState => ("pset_get_state", Short, Pset, false),
    PsetSetState => ("pset_set_state", Short, Pset, false),
    PsetMove => ("pset_move", Short, Pset, false),
    PsetReference => ("pset_reference", Short, Pset, false),

    SpaceCreate => ("space_create", Short, Space, false),
    SpaceDestroy => ("space_destroy", Short, Space, false),
    SpaceGetState => ("space_get_state", Short, Space, false),
    SpaceSetState => ("space_set_state", Short, Space, false),
    SpaceMove => ("space_move", Short, Space, false),
    SpaceReference => ("space_reference", Short, Space, false),

    ThreadCreate => ("thread_create", Short, Thread, false),
    ThreadDestroy => ("thread_destroy", Short, Thread, false),
    ThreadGetState => ("thread_get_state", Short, Thread, false),
    ThreadSetState => ("thread_set_state", Short, Thread, false),
    ThreadMove => ("thread_move", Short, Thread, false),
    ThreadReference => ("thread_reference", Short, Thread, false),

    RefCreate => ("ref_create", Short, Ref, false),
    RefDestroy => ("ref_destroy", Short, Ref, false),
    RefGetState => ("ref_get_state", Short, Ref, false),
    RefSetState => ("ref_set_state", Short, Ref, false),
    RefMove => ("ref_move", Short, Ref, false),
    RefReference => ("ref_reference", Short, Ref, false),

    // ---- Type-specific short operations. ----
    MutexTrylock => ("mutex_trylock", Short, Mutex, false),
    MutexUnlock => ("mutex_unlock", Short, Mutex, false),
    CondSignal => ("cond_signal", Short, Cond, false),
    CondBroadcast => ("cond_broadcast", Short, Cond, false),
    ThreadInterrupt => ("thread_interrupt", Short, Thread, false),
    ThreadSchedule => ("thread_schedule", Short, Thread, false),
    RegionProtect => ("region_protect", Short, Region, false),
    MappingProtect => ("mapping_protect", Short, Mapping, false),
    RefCompare => ("ref_compare", Short, Ref, false),
    IpcClientDisconnect => ("ipc_client_disconnect", Short, Ipc, false),
    IpcServerDisconnect => ("ipc_server_disconnect", Short, Ipc, false),
    IpcClientAlert => ("ipc_client_alert", Short, Ipc, false),
    IpcServerAlert => ("ipc_server_alert", Short, Ipc, false),
    RegionPopulate => ("region_populate", Short, Region, false),

    // ---- Trivial operations: never touch user memory, never sleep. ----
    ThreadSelf => ("thread_self", Trivial, Thread, false),
    SysNull => ("sys_null", Trivial, Misc, false),
    SysVersion => ("sys_version", Trivial, Misc, false),
    SysClock => ("sys_clock", Trivial, Misc, false),
    SysCpuId => ("sys_cpu_id", Trivial, Misc, false),
    SysYield => ("sys_yield", Trivial, Misc, false),
    SysTrace => ("sys_trace", Trivial, Misc, false),
    SysStats => ("sys_stats", Trivial, Misc, false),

    // ---- Long operations: sleep indefinitely, restart from the top. ----
    MutexLock => ("mutex_lock", Long, Mutex, false),
    PortWait => ("port_wait", Long, Port, false),
    PsetWait => ("pset_wait", Long, Pset, false),
    ThreadWait => ("thread_wait", Long, Thread, false),
    ThreadSleep => ("thread_sleep", Long, Thread, false),
    IpcClientConnect => ("ipc_client_connect", Long, Ipc, false),
    SpaceWaitThreads => ("space_wait_threads", Long, Space, false),
    SchedDonate => ("sched_donate", Long, Thread, false),

    // ---- Multi-stage operations: interruptible at intermediate points,
    // progress recorded in user registers. ----
    CondWait => ("cond_wait", MultiStage, Cond, false),
    RegionSearch => ("region_search", MultiStage, Region, false),

    IpcClientConnectSend => ("ipc_client_connect_send", MultiStage, Ipc, false),
    IpcClientSend => ("ipc_client_send", MultiStage, Ipc, false),
    IpcClientReceive => ("ipc_client_receive", MultiStage, Ipc, false),
    IpcClientSendOverReceive => ("ipc_client_send_over_receive", MultiStage, Ipc, false),
    IpcClientConnectSendOverReceive =>
        ("ipc_client_connect_send_over_receive", MultiStage, Ipc, false),
    IpcClientAckReceive => ("ipc_client_ack_receive", MultiStage, Ipc, false),
    IpcClientSendMore => ("ipc_client_send_more", MultiStage, Ipc, true),
    IpcClientReceiveMore => ("ipc_client_receive_more", MultiStage, Ipc, true),

    IpcServerWaitReceive => ("ipc_server_wait_receive", MultiStage, Ipc, false),
    IpcServerReceive => ("ipc_server_receive", MultiStage, Ipc, false),
    IpcServerSend => ("ipc_server_send", MultiStage, Ipc, false),
    IpcServerSendWaitReceive => ("ipc_server_send_wait_receive", MultiStage, Ipc, false),
    IpcServerAckSend => ("ipc_server_ack_send", MultiStage, Ipc, false),
    IpcServerAckSendWaitReceive =>
        ("ipc_server_ack_send_wait_receive", MultiStage, Ipc, false),
    IpcServerSendOverReceive => ("ipc_server_send_over_receive", MultiStage, Ipc, false),
    IpcServerSendMore => ("ipc_server_send_more", MultiStage, Ipc, true),
    IpcServerReceiveMore => ("ipc_server_receive_more", MultiStage, Ipc, true),

    IpcSendOneway => ("ipc_send_oneway", MultiStage, Ipc, false),
    IpcWaitReceiveOneway => ("ipc_wait_receive_oneway", MultiStage, Ipc, false),
    IpcReceiveOneway => ("ipc_receive_oneway", MultiStage, Ipc, false),
    IpcSendOnewayMore => ("ipc_send_oneway_more", MultiStage, Ipc, true),

    // ---- Batched submission (an extension beyond the paper's 107
    // entrypoints): process a user-memory ring of one-way send/receive
    // descriptors per kernel entry. Progress lives in `edx` (ops done),
    // committed at descriptor boundaries, so the call is its own restart
    // point; a descriptor that must sleep is rewritten to the equivalent
    // plain entrypoint and chained. ----
    IpcSubmit => ("ipc_submit", MultiStage, Ipc, false),
}

impl Sys {
    /// The entrypoint number (the value user code loads into `eax`).
    #[inline]
    pub fn num(self) -> u32 {
        self as u32
    }

    /// Decode an entrypoint number from `eax`.
    pub fn from_u32(n: u32) -> Option<Sys> {
        SYSCALLS.get(n as usize).map(|d| d.sys)
    }

    /// The static descriptor for this entrypoint.
    pub fn desc(self) -> &'static SysDesc {
        &SYSCALLS[self.num() as usize]
    }

    /// The entrypoint's Table 1 class.
    pub fn class(self) -> SysClass {
        self.desc().class
    }

    /// The entrypoint's conventional name.
    pub fn name(self) -> &'static str {
        self.desc().name
    }

    /// The entrypoint's API family.
    pub fn family(self) -> Family {
        self.desc().family
    }

    /// The argument registers the entrypoint reads.
    pub fn args(self) -> ArgRegs {
        self.desc().args
    }

    /// Whether the entrypoint can block or be preempted in-kernel.
    pub fn may_block(self) -> bool {
        self.desc().may_block
    }

    /// The restart continuation a blocked instance of this call leaves
    /// in `eax` (see [`SysDesc::restart_target`]).
    pub fn restart_target(self) -> Sys {
        self.desc().restart_target
    }

    /// The common object operation this entrypoint performs, if it is
    /// one of the 54 common-op rows.
    pub fn common_op(self) -> Option<CommonOp> {
        self.desc().common_op
    }

    /// Whether the entrypoint is an extension beyond the paper's
    /// 107-call API (excluded from the Table 1 reproduction).
    pub fn is_extension(self) -> bool {
        matches!(self, Sys::IpcSubmit)
    }
}

/// Number of kernel entrypoints ([`SYSCALLS`] length; the paper's 107
/// plus the batched-submission extension).
pub const SYSCALL_COUNT: usize = SYSCALLS.len();

/// Count entrypoints in each Table 1 class:
/// `(trivial, short, long, multi-stage)`.
pub fn class_counts() -> (usize, usize, usize, usize) {
    let mut t = (0, 0, 0, 0);
    for d in SYSCALLS {
        match d.class {
            SysClass::Trivial => t.0 += 1,
            SysClass::Short => t.1 += 1,
            SysClass::Long => t.2 += 1,
            SysClass::MultiStage => t.3 += 1,
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_counts_match_paper() {
        // Paper Table 1: 8 trivial (7%), 68 short (64%), 8 long (7%),
        // 23 multi-stage (22%); 107 total. `ipc_submit` extends the table
        // by one multi-stage entrypoint beyond the paper's API.
        let (trivial, short, long, multi) = class_counts();
        assert_eq!(trivial, 8);
        assert_eq!(short, 68);
        assert_eq!(long, 8);
        assert_eq!(multi, 24);
        assert_eq!(SYSCALLS.len(), 108);
    }

    #[test]
    fn table_order_matches_discriminants() {
        for (i, d) in SYSCALLS.iter().enumerate() {
            assert_eq!(d.sys.num() as usize, i, "table out of order at {}", d.name);
        }
    }

    #[test]
    fn from_u32_roundtrip() {
        assert_eq!(Sys::from_u32(Sys::MutexLock.num()), Some(Sys::MutexLock));
        assert_eq!(Sys::from_u32(107), Some(Sys::IpcSubmit));
        assert_eq!(Sys::from_u32(108), None);
        assert_eq!(Sys::from_u32(u32::MAX), None);
    }

    #[test]
    fn exactly_five_restart_point_entrypoints() {
        // Paper §4.4: five system calls are rarely called directly and
        // usually serve as restart points for interrupted operations.
        let restart: Vec<_> = SYSCALLS.iter().filter(|d| d.restart_point).collect();
        assert_eq!(restart.len(), 5);
        for d in restart {
            assert_eq!(d.class, SysClass::MultiStage);
            assert!(d.name.ends_with("_more"));
        }
    }

    #[test]
    fn multi_stage_calls_are_ipc_except_cond_wait_and_region_search() {
        // Paper §4.2: "Except for cond_wait and region_search ... all of
        // the multi-stage calls in the Fluke API are IPC-related."
        for d in SYSCALLS.iter().filter(|d| d.class == SysClass::MultiStage) {
            if d.family != Family::Ipc {
                assert!(
                    d.sys == Sys::CondWait || d.sys == Sys::RegionSearch,
                    "unexpected non-IPC multi-stage call {}",
                    d.name
                );
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SYSCALLS.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SYSCALLS.len());
    }

    #[test]
    fn every_family_is_populated() {
        use std::collections::HashSet;
        let fams: HashSet<_> = SYSCALLS.iter().map(|d| d.family).collect();
        assert_eq!(fams.len(), 11, "all 11 families appear in the table");
    }

    /// The full `SYSCALLS` coverage law: discriminants are dense from
    /// zero, every `Sys` variant appears exactly once, and the Table 1
    /// class totals (including the five §4.4 restart points) match the
    /// paper's published counts.
    #[test]
    fn syscall_table_is_dense_complete_and_paper_shaped() {
        use std::collections::HashSet;
        assert_eq!(SYSCALLS.len(), SYSCALL_COUNT);
        // Dense discriminants 0..N, each decoding to a distinct variant.
        let mut seen = HashSet::new();
        for n in 0..SYSCALL_COUNT as u32 {
            let sys = Sys::from_u32(n).expect("dense discriminants");
            assert_eq!(sys.num(), n);
            assert!(seen.insert(sys), "variant {} appears twice", sys.name());
        }
        assert_eq!(Sys::from_u32(SYSCALL_COUNT as u32), None);
        assert_eq!(seen.len(), SYSCALL_COUNT);
        // Paper Table 1 totals, via the descriptor table itself.
        let (trivial, short, long, multi) = class_counts();
        assert_eq!(
            (trivial, short, long, multi, trivial + short + long + multi),
            (8, 68, 8, 24, 108)
        );
        assert_eq!(SYSCALLS.iter().filter(|d| d.restart_point).count(), 5);
    }

    #[test]
    fn common_op_rows_decode_family_and_op() {
        for d in SYSCALLS {
            if d.sys.num() < COMMON_OP_ROWS {
                let op = d.common_op.expect("common rows carry an op");
                let ty = d
                    .family
                    .obj_type()
                    .expect("common rows are object families");
                // The name is exactly "<family>_<op>" — the decode is
                // consistent with the hand-written names.
                assert!(
                    d.name.ends_with(op.name()),
                    "{} does not end with {}",
                    d.name,
                    op.name()
                );
                // Six consecutive rows per family, `CommonOp` order.
                assert_eq!(
                    d.sys.num() / 6,
                    SYSCALLS[(d.sys.num() - d.sys.num() % 6) as usize].sys.num() / 6
                );
                let _ = ty;
            } else {
                assert_eq!(d.common_op, None, "{} past the common rows", d.name);
            }
        }
        // Spot-check the decode against known rows.
        assert_eq!(Sys::MutexCreate.common_op(), Some(CommonOp::Create));
        assert_eq!(Sys::RefReference.common_op(), Some(CommonOp::Reference));
        assert_eq!(Sys::ThreadGetState.common_op(), Some(CommonOp::GetState));
        assert_eq!(Sys::MutexLock.common_op(), None);
        assert_eq!(
            Sys::PsetMove.family().obj_type(),
            Some(crate::ObjType::Portset)
        );
    }

    #[test]
    fn may_block_is_exactly_long_and_multistage() {
        for d in SYSCALLS {
            assert_eq!(
                d.may_block,
                matches!(d.class, SysClass::Long | SysClass::MultiStage),
                "{}",
                d.name
            );
        }
    }

    #[test]
    fn restart_targets_are_blocking_and_fixpoints() {
        for d in SYSCALLS {
            // Non-blocking calls restart only as themselves (a page fault
            // rolls the whole call back).
            if !d.may_block {
                assert_eq!(d.restart_target, d.sys, "{}", d.name);
            } else {
                // A restart target must itself be a blocking entrypoint…
                assert!(d.restart_target.may_block(), "{}", d.name);
                // …and restarting is idempotent: the target restarts as
                // itself.
                assert_eq!(
                    d.restart_target.restart_target(),
                    d.restart_target,
                    "{}",
                    d.name
                );
            }
        }
        // The five §4.4 restart points are targets of at least one other
        // entrypoint, and target themselves.
        for d in SYSCALLS.iter().filter(|d| d.restart_point) {
            assert_eq!(d.restart_target, d.sys, "{}", d.name);
            assert!(
                SYSCALLS
                    .iter()
                    .any(|o| o.sys != d.sys && o.restart_target == d.sys),
                "{} is a restart point nobody restarts into",
                d.name
            );
        }
        // The paper's worked example (§4.3): cond_wait sleeps as
        // mutex_lock.
        assert_eq!(Sys::CondWait.restart_target(), Sys::MutexLock);
    }

    #[test]
    fn arg_signatures_are_consistent() {
        // Trivial calls never name handles (nothing to fault on)…
        for d in SYSCALLS.iter().filter(|d| d.class == SysClass::Trivial) {
            assert!(
                !d.args.contains(ArgRegs::HANDLE) || d.sys == Sys::SysStats,
                "{}",
                d.name
            );
        }
        // …while every common op starts from a handle.
        for d in SYSCALLS.iter().filter(|d| d.common_op.is_some()) {
            assert!(d.args.contains(ArgRegs::HANDLE), "{}", d.name);
        }
        assert_eq!(Sys::SysNull.args(), ArgRegs::NONE);
        assert_eq!(Sys::MutexLock.args(), ArgRegs::HANDLE);
        assert_eq!(Sys::MutexLock.args().names(), vec!["ebx"]);
        assert_eq!(Sys::CondWait.args().count(), 2);
        assert!(Sys::MappingCreate.args().contains(ArgRegs::RBUF));
        assert_eq!(Sys::MappingCreate.args().count(), 5);
    }

    #[test]
    fn class_helpers() {
        assert_eq!(Sys::ThreadSelf.class(), SysClass::Trivial);
        assert_eq!(Sys::MutexTrylock.class(), SysClass::Short);
        assert_eq!(Sys::MutexLock.class(), SysClass::Long);
        assert_eq!(Sys::CondWait.class(), SysClass::MultiStage);
        assert_eq!(Sys::MutexLock.name(), "mutex_lock");
        assert_eq!(SysClass::MultiStage.name(), "Multi-stage");
    }
}

//! Syscall-flow integrity graph, derived statically from [`SYSCALLS`].
//!
//! In the spirit of SFIP (syscall-flow-integrity protection), the
//! [`SysDesc`] table already fixes, for every entrypoint, everything a
//! lifecycle checker needs to know *without reading handler code*:
//!
//! * which entrypoints create, destroy, rename, or merely use an object
//!   of each of the nine primitive types ([`flow_op`]) — the common-op
//!   rows carry it explicitly, and the type-specific rows inherit their
//!   family's object type whenever they take a handle argument;
//! * which secondary argument registers *also* name objects
//!   ([`val_role`]) — `cond_wait`'s mutex, `*_move`'s target address,
//!   `*_reference`'s Reference object;
//! * which entrypoints a blocked call may legally re-enter as
//!   ([`continuations`] / [`restart_closure`]) — the `restart_target`
//!   column plus the multi-stage IPC stage-advance rewrites, which are
//!   themselves derivable from the table (a blocked *send* whose
//!   transfer completes continues as the corresponding *receive-more*
//!   restart point, and a server send may park back into its wait loop).
//!
//! [`FlowGraph::derive`] folds the first two views into an explicit
//! per-type lifecycle automaton (Absent ⇄ Live with self-loop uses),
//! which the kernel's `flowcheck` debug checker enforces at run time and
//! the `kfuzz` fuzzer actively tries to escape.

use crate::objtype::ObjType;
use crate::sysnum::{ArgRegs, CommonOp, Family, Sys, SYSCALLS, SYSCALL_COUNT};

/// How an entrypoint acts on the object its handle register names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOp {
    /// Creates an object of the given type at the handle address
    /// (legal only while the location is Absent).
    Create(ObjType),
    /// Destroys the named object (legal only while Live with this type).
    Destroy(ObjType),
    /// Renames the object from the handle address to the `edx` address
    /// (source must be Live with this type, target Absent).
    Move(ObjType),
    /// Uses the named object without changing its lifecycle state
    /// (legal while Live with this type, or via a Live Reference —
    /// several handle paths chase Reference objects transparently).
    Use(ObjType),
    /// No object-lifecycle meaning for the handle register (no handle,
    /// non-object family, or — like `region_search` — a handle that
    /// selects a Space rather than naming a family object).
    Other,
}

/// What the `edx` value register names, beyond plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValRole {
    /// Plain scalar data (the default).
    Data,
    /// The destination virtual address of a `*_move` rename (must be
    /// Absent; becomes Live with the moved object's type).
    MoveTarget,
    /// A second object handle of the given type (`cond_wait`'s mutex,
    /// `ref_compare`'s and `*_reference`'s Reference).
    Object(ObjType),
}

/// The lifecycle action `sys` performs on the object named by its
/// handle register (`ebx`), derived entirely from the [`SYSCALLS`] row:
/// common-op rows map their op directly; type-specific rows with a
/// handle argument are uses of their family's object type.
/// `region_search` is the one handle-bearing exception — its handle
/// selects a Space (or 0 for the caller's own), not a Region.
pub fn flow_op(sys: Sys) -> FlowOp {
    let d = sys.desc();
    let Some(ty) = d.family.obj_type() else {
        return FlowOp::Other;
    };
    if sys == Sys::RegionSearch {
        return FlowOp::Other;
    }
    match d.common_op {
        Some(CommonOp::Create) => FlowOp::Create(ty),
        Some(CommonOp::Destroy) => FlowOp::Destroy(ty),
        Some(CommonOp::Move) => FlowOp::Move(ty),
        Some(CommonOp::GetState) | Some(CommonOp::SetState) | Some(CommonOp::Reference) => {
            FlowOp::Use(ty)
        }
        None => {
            if d.args.contains(ArgRegs::HANDLE) {
                FlowOp::Use(ty)
            } else {
                FlowOp::Other
            }
        }
    }
}

/// The object-naming role of the `edx` value register of `sys`:
/// `*_move` carries the rename target, `*_reference` and `ref_compare`
/// carry a Reference handle, and `cond_wait` carries the associated
/// mutex. Everything else treats `edx` as data.
pub fn val_role(sys: Sys) -> ValRole {
    match sys.common_op() {
        Some(CommonOp::Move) => return ValRole::MoveTarget,
        Some(CommonOp::Reference) => return ValRole::Object(ObjType::Reference),
        _ => {}
    }
    match sys {
        Sys::CondWait => ValRole::Object(ObjType::Mutex),
        Sys::RefCompare => ValRole::Object(ObjType::Reference),
        _ => ValRole::Data,
    }
}

/// A set of entrypoints as a bitmask (the table has 108 rows, so a
/// `u128` covers it; compile-time checked below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SysSet(pub u128);

const _: () = assert!(SYSCALL_COUNT <= 128, "SysSet requires <= 128 entrypoints");

impl SysSet {
    /// The empty set.
    pub const EMPTY: SysSet = SysSet(0);

    /// Insert an entrypoint; returns true if it was newly added.
    pub fn insert(&mut self, s: Sys) -> bool {
        let bit = 1u128 << s.num();
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Membership test.
    pub fn contains(self, s: Sys) -> bool {
        self.0 & (1u128 << s.num()) != 0
    }

    /// Number of entrypoints in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True when the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate members in entrypoint-number order.
    pub fn iter(self) -> impl Iterator<Item = Sys> {
        (0..SYSCALL_COUNT as u32)
            .filter_map(Sys::from_u32)
            .filter(move |s| self.contains(*s))
    }
}

/// The entrypoints a *blocked* instance of `sys` may next be observed
/// re-entering as — the one-step continuation edges:
///
/// * its [`Sys::restart_target`] (every blocked call parks with its
///   restart continuation, or with itself before the first commit);
/// * for multi-stage IPC *sends*, the stage-advance rewrites the pump
///   applies to a still-blocked thread when its transfer completes:
///   a client send whose message is consumed continues as
///   `ipc_client_receive_more` (awaiting the reply), and a server send
///   continues as `ipc_server_receive_more` or parks back into
///   `ipc_server_wait_receive` when the connection ends.
///
/// These stage edges are derivable from the table alone: they apply
/// exactly to the `Ipc`-family rows that read a send buffer (`esi`),
/// keyed by their client/server side.
pub fn continuations(sys: Sys) -> SysSet {
    let d = sys.desc();
    let mut out = SysSet::EMPTY;
    out.insert(d.restart_target);
    if d.family == Family::Ipc && d.args.contains(ArgRegs::SBUF) {
        if d.name.starts_with("ipc_client") {
            out.insert(Sys::IpcClientReceiveMore);
        } else if d.name.starts_with("ipc_server") {
            out.insert(Sys::IpcServerReceiveMore);
            out.insert(Sys::IpcServerWaitReceive);
        }
    }
    out
}

/// The reflexive-transitive closure of [`continuations`]: every
/// entrypoint a call that blocked while dispatched as `sys` may ever
/// legally re-enter as, across any number of stage advances while
/// blocked. The kernel's flowcheck re-entry rule is exactly membership
/// in this set.
pub fn restart_closure(sys: Sys) -> SysSet {
    let mut closed = SysSet::EMPTY;
    closed.insert(sys);
    let mut frontier = vec![sys];
    while let Some(s) = frontier.pop() {
        for next in continuations(s).iter() {
            if closed.insert(next) {
                frontier.push(next);
            }
        }
    }
    closed
}

/// One edge of a per-type lifecycle automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifeEdge {
    /// The entrypoint that takes the edge.
    pub via: Sys,
    /// Whether the location must be Live (true) or Absent (false)
    /// before the call.
    pub from_live: bool,
    /// Whether the location is Live after a successful call.
    pub to_live: bool,
}

/// The derived lifecycle automaton of one primitive object type.
#[derive(Debug, Clone)]
pub struct TypeFlow {
    /// The object type.
    pub ty: ObjType,
    /// Its `*_create` entrypoint (Absent → Live).
    pub create: Sys,
    /// Its `*_destroy` entrypoint (Live → Absent).
    pub destroy: Sys,
    /// Its `*_move` entrypoint (Live at source → Live at target).
    pub mv: Sys,
    /// Every entrypoint that uses a Live object of this type via its
    /// handle register without changing its lifecycle state.
    pub uses: Vec<Sys>,
    /// The full edge list (create, destroy, and use self-loops).
    pub edges: Vec<LifeEdge>,
}

/// The complete syscall-flow graph: one lifecycle automaton per
/// primitive object type, derived from [`SYSCALLS`] alone.
#[derive(Debug, Clone)]
pub struct FlowGraph {
    /// One automaton per object type, in [`ObjType::ALL`] order.
    pub types: Vec<TypeFlow>,
}

impl FlowGraph {
    /// Derive the graph from the entrypoint table.
    pub fn derive() -> FlowGraph {
        let mut types = Vec::new();
        for &ty in ObjType::ALL.iter() {
            let mut create = None;
            let mut destroy = None;
            let mut mv = None;
            let mut uses = Vec::new();
            let mut edges = Vec::new();
            for d in SYSCALLS {
                match flow_op(d.sys) {
                    FlowOp::Create(t) if t == ty => {
                        create = Some(d.sys);
                        edges.push(LifeEdge {
                            via: d.sys,
                            from_live: false,
                            to_live: true,
                        });
                    }
                    FlowOp::Destroy(t) if t == ty => {
                        destroy = Some(d.sys);
                        edges.push(LifeEdge {
                            via: d.sys,
                            from_live: true,
                            to_live: false,
                        });
                    }
                    FlowOp::Move(t) if t == ty => {
                        mv = Some(d.sys);
                        // At the handle address a successful move is
                        // Live → Absent; the Live target is the edx
                        // address (see `ValRole::MoveTarget`).
                        edges.push(LifeEdge {
                            via: d.sys,
                            from_live: true,
                            to_live: false,
                        });
                    }
                    FlowOp::Use(t) if t == ty => {
                        uses.push(d.sys);
                        edges.push(LifeEdge {
                            via: d.sys,
                            from_live: true,
                            to_live: true,
                        });
                    }
                    _ => {}
                }
            }
            types.push(TypeFlow {
                ty,
                create: create.expect("every type has a create row"),
                destroy: destroy.expect("every type has a destroy row"),
                mv: mv.expect("every type has a move row"),
                uses,
                edges,
            });
        }
        FlowGraph { types }
    }

    /// The automaton for one object type.
    pub fn for_type(&self, ty: ObjType) -> &TypeFlow {
        self.types
            .iter()
            .find(|t| t.ty == ty)
            .expect("all types derived")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_has_create_destroy_move_and_uses() {
        let g = FlowGraph::derive();
        assert_eq!(g.types.len(), 9);
        for tf in &g.types {
            assert_eq!(tf.create.common_op(), Some(CommonOp::Create));
            assert_eq!(tf.destroy.common_op(), Some(CommonOp::Destroy));
            assert_eq!(tf.mv.common_op(), Some(CommonOp::Move));
            assert_eq!(tf.create.family().obj_type(), Some(tf.ty));
            // get_state / set_state / reference are always uses.
            assert!(tf.uses.len() >= 3, "{:?}", tf.ty);
            for u in &tf.uses {
                assert_eq!(flow_op(*u), FlowOp::Use(tf.ty));
            }
        }
        // Spot-check the derived use sets against the hand-known API.
        let mutex = g.for_type(ObjType::Mutex);
        assert!(mutex.uses.contains(&Sys::MutexLock));
        assert!(mutex.uses.contains(&Sys::MutexTrylock));
        assert!(mutex.uses.contains(&Sys::MutexUnlock));
        let region = g.for_type(ObjType::Region);
        assert!(region.uses.contains(&Sys::RegionPopulate));
        assert!(
            !region.uses.contains(&Sys::RegionSearch),
            "region_search's handle selects a Space, not a Region"
        );
    }

    #[test]
    fn flow_op_classifies_the_whole_table() {
        let mut creates = 0;
        let mut destroys = 0;
        let mut moves = 0;
        let mut uses = 0;
        let mut others = 0;
        for d in SYSCALLS {
            match flow_op(d.sys) {
                FlowOp::Create(_) => creates += 1,
                FlowOp::Destroy(_) => destroys += 1,
                FlowOp::Move(_) => moves += 1,
                FlowOp::Use(_) => uses += 1,
                FlowOp::Other => others += 1,
            }
        }
        assert_eq!((creates, destroys, moves), (9, 9, 9));
        // All Ipc/Misc rows, the no-handle rows (thread_self, sys_null,
        // thread_sleep, …) and region_search are Other; everything else
        // with a handle is a Use.
        assert_eq!(creates + destroys + moves + uses + others, SYSCALL_COUNT);
        assert!(uses >= 27 + 14, "54 common rows minus c/d/m plus specifics");
        assert_eq!(flow_op(Sys::RegionSearch), FlowOp::Other);
        assert_eq!(flow_op(Sys::SysStats), FlowOp::Other);
        assert_eq!(flow_op(Sys::ThreadSelf), FlowOp::Other);
        assert_eq!(flow_op(Sys::SchedDonate), FlowOp::Use(ObjType::Thread));
        assert_eq!(flow_op(Sys::PsetWait), FlowOp::Use(ObjType::Portset));
    }

    #[test]
    fn val_roles_name_secondary_objects() {
        assert_eq!(val_role(Sys::MutexMove), ValRole::MoveTarget);
        assert_eq!(val_role(Sys::SpaceMove), ValRole::MoveTarget);
        assert_eq!(
            val_role(Sys::MutexReference),
            ValRole::Object(ObjType::Reference)
        );
        assert_eq!(val_role(Sys::CondWait), ValRole::Object(ObjType::Mutex));
        assert_eq!(
            val_role(Sys::RefCompare),
            ValRole::Object(ObjType::Reference)
        );
        assert_eq!(val_role(Sys::MutexLock), ValRole::Data);
        assert_eq!(val_role(Sys::RegionProtect), ValRole::Data);
    }

    #[test]
    fn closures_are_closed_and_match_the_paper_examples() {
        for d in SYSCALLS {
            let c = restart_closure(d.sys);
            assert!(c.contains(d.sys), "{} reflexive", d.name);
            assert!(c.contains(d.restart_target), "{} restart edge", d.name);
            // Closedness: one more step adds nothing.
            for s in c.iter() {
                for n in continuations(s).iter() {
                    assert!(c.contains(n), "{} not closed via {}", d.name, s.name());
                }
            }
            // Non-blocking calls only ever restart as themselves.
            if !d.may_block {
                assert_eq!(c.len(), 1, "{}", d.name);
            }
        }
        // §4.3 worked example: cond_wait sleeps as mutex_lock.
        let cw = restart_closure(Sys::CondWait);
        assert!(cw.contains(Sys::MutexLock));
        assert_eq!(cw.len(), 2, "cond_wait and mutex_lock only");
        // A combined client send-over-receive spans both halves.
        let c = restart_closure(Sys::IpcClientSendOverReceive);
        assert!(c.contains(Sys::IpcClientSendMore));
        assert!(c.contains(Sys::IpcClientReceiveMore));
        assert!(!c.contains(Sys::IpcServerReceiveMore));
        // A server reply-and-wait can park back into its wait loop.
        let s = restart_closure(Sys::IpcServerSendWaitReceive);
        assert!(s.contains(Sys::IpcServerSendMore));
        assert!(s.contains(Sys::IpcServerReceiveMore));
        assert!(s.contains(Sys::IpcServerWaitReceive));
        // Oneway sends never cross into the reliable family.
        let o = restart_closure(Sys::IpcSendOneway);
        assert_eq!(o.len(), 2);
        assert!(o.contains(Sys::IpcSendOnewayMore));
    }

    #[test]
    fn sysset_basics() {
        let mut s = SysSet::EMPTY;
        assert!(s.is_empty());
        assert!(s.insert(Sys::MutexLock));
        assert!(!s.insert(Sys::MutexLock));
        assert!(s.insert(Sys::CondWait));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Sys::CondWait));
        assert!(!s.contains(Sys::SysNull));
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![Sys::MutexLock, Sys::CondWait]);
    }
}

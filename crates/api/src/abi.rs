//! Register calling conventions.
//!
//! The defining rule of the atomic API (paper §4.4, "Design effort
//! required"): *updatable system-call parameters are passed in registers,
//! never in user memory* — modifying a stack-based parameter could itself
//! page-fault and expose an inconsistent intermediate state. Multi-stage
//! operations advance their pointer/count registers in place exactly like
//! the x86 string instructions the paper cites.
//!
//! Conventions:
//!
//! * `eax` — entrypoint number at the trap; result code on completion. The
//!   kernel rewrites `eax` (with `eip` left at the trap instruction) to move
//!   a thread to a different restart entrypoint, e.g. an interrupted
//!   `cond_wait` becomes a pending `mutex_lock`.
//! * `ebx` — first argument, usually the object handle (a virtual address).
//! * `ecx` — count register: byte counts for IPC transfers, word counts for
//!   state buffers. Decremented in place by multi-stage transfers.
//! * `edx` — second argument / secondary result value.
//! * `esi` — send-buffer pointer, advanced in place.
//! * `edi` — receive-buffer pointer, advanced in place.
//! * `pr0`, `pr1` — kernel-maintained pseudo-registers carrying intermediate
//!   multi-stage IPC state (e.g. the pending receive window of a
//!   send-over-receive while the send stage runs). User code never touches
//!   them except when saving/restoring thread state.

use fluke_arch::Reg;

/// First argument: object handle.
pub const ARG_HANDLE: Reg = Reg::Ebx;
/// Count argument (bytes or words), advanced in place by multi-stage calls.
pub const ARG_COUNT: Reg = Reg::Ecx;
/// Second argument / secondary result.
pub const ARG_VAL: Reg = Reg::Edx;
/// Send-buffer pointer, advanced in place.
pub const ARG_SBUF: Reg = Reg::Esi;
/// Receive-buffer pointer, advanced in place.
pub const ARG_RBUF: Reg = Reg::Edi;
/// Result code register (on completion).
pub const RESULT: Reg = Reg::Eax;

/// Index of the pseudo-register holding the pending receive window of a
/// send-over-receive operation during its send stage.
pub const PR_RECV_WINDOW: usize = 0;
/// Index of the pseudo-register holding IPC engine flags (see `IPC_PR1_*`).
pub const PR_IPC_FLAGS: usize = 1;

/// `pr1` flag: the current receive stage has already consumed a message
/// header (informational; reserved).
pub const IPC_PR1_IN_MESSAGE: u32 = 1 << 0;
/// `pr1` flag: after the send stage completes, reverse direction and
/// receive a reply whose window is staged in `pr0` ("send over receive").
pub const IPC_PR1_PENDING_RECEIVE: u32 = 1 << 1;
/// `pr1` flag: after the send stage completes, wait for the next request
/// (window staged in `pr0`).
pub const IPC_PR1_PENDING_WAIT: u32 = 1 << 2;
/// `pr1` flag: after the send stage completes, disconnect (acknowledge and
/// end the exchange).
pub const IPC_PR1_DISCONNECT: u32 = 1 << 3;

/// Exception-IPC message kind for a page fault delivered to a region keeper.
pub const EXC_MSG_PAGEFAULT: u32 = 0xfa01;
/// Number of 32-bit words in a page-fault exception-IPC message:
/// `[EXC_MSG_PAGEFAULT, region_token, byte_offset, access]`.
pub const EXC_MSG_WORDS: usize = 4;
/// `access` word value for a read fault.
pub const EXC_ACCESS_READ: u32 = 0;
/// `access` word value for a write fault.
pub const EXC_ACCESS_WRITE: u32 = 1;

/// The page size of the simulated MMU, in bytes.
pub const PAGE_SIZE: u32 = 4096;

// ---------------------------------------------------------------------
// Batched IPC submission (`ipc_submit`).
//
// `esi` points at a ring of descriptors, `ecx` holds the op count, and
// `edx` holds the number of ops already completed — the restart cursor,
// advanced only at descriptor boundaries so an interrupted batch resumes
// at the first unfinished op. Each descriptor is four 32-bit words:
//
//   word 0: opflags — bit 0 selects receive (set) or send (clear), bit 1
//           requests non-blocking; the kernel writes the op's result code
//           shifted into the upper bits with SUBMIT_DONE set.
//   word 1: port handle (a virtual address, like every handle).
//   word 2: buffer pointer (send source or receive destination).
//   word 3: byte count in; for receives the kernel writes back the
//           delivered length.
// ---------------------------------------------------------------------

/// Words per `ipc_submit` descriptor.
pub const SUBMIT_DESC_WORDS: u32 = 4;
/// `opflags` bit 0: this descriptor is a receive (otherwise a send).
pub const SUBMIT_OP_RECV: u32 = 1 << 0;
/// `opflags` bit 1: fail with `WouldBlock` instead of sleeping.
pub const SUBMIT_OP_NOWAIT: u32 = 1 << 1;
/// Set in `opflags` when the kernel has written the op's result code.
pub const SUBMIT_DONE: u32 = 1 << 31;
/// Shift of the result code within a completed descriptor's `opflags`.
pub const SUBMIT_RESULT_SHIFT: u32 = 16;
/// Maximum kernel-buffered messages per port for submitted sends.
pub const PORT_BUF_MSGS: usize = 16;
/// Maximum bytes per submitted send (bounds kernel buffering; larger
/// messages must use the plain rendezvous entrypoints).
pub const SUBMIT_MAX_MSG: u32 = 2048;

/// Round an address down to its page base.
#[inline]
pub fn page_base(addr: u32) -> u32 {
    addr & !(PAGE_SIZE - 1)
}

/// Round a length up to a whole number of pages.
#[inline]
pub fn pages_spanning(len: u32) -> u32 {
    len.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        assert_eq!(page_base(0), 0);
        assert_eq!(page_base(4095), 0);
        assert_eq!(page_base(4096), 4096);
        assert_eq!(page_base(0x1234_5678), 0x1234_5000);
        assert_eq!(pages_spanning(0), 0);
        assert_eq!(pages_spanning(1), 1);
        assert_eq!(pages_spanning(4096), 1);
        assert_eq!(pages_spanning(4097), 2);
    }

    #[test]
    fn updatable_params_are_registers_not_memory() {
        // The ABI constants must all name registers; this is the paper's
        // "parameters in registers" design rule made executable.
        let regs = [ARG_HANDLE, ARG_COUNT, ARG_VAL, ARG_SBUF, ARG_RBUF, RESULT];
        let mut uniq: Vec<u8> = regs.iter().map(|r| r.index() as u8).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), regs.len(), "conventions must not overlap");
    }
}

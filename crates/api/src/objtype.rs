//! The nine primitive object types exported by the Fluke kernel
//! (the paper's Table 2).
//!
//! All types support the common operations *create*, *destroy*,
//! *get-state*, *set-state*, *move* ("rename") and *reference*
//! ("point-a-reference-at"). Kernel objects live **in** application memory:
//! an object's handle is the virtual address at which it was created, and
//! memory protections provide access control — so any space that can map
//! the page holding an object can name and operate on it (paper §4.3,
//! footnote 3).

/// A primitive kernel object type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u32)]
pub enum ObjType {
    /// A kernel-supported mutex, safe for sharing between processes.
    Mutex = 0,
    /// A kernel-supported condition variable.
    Cond = 1,
    /// Encapsulates an imported region of memory; associated with a Space
    /// (destination) and a Region (source).
    Mapping = 2,
    /// Encapsulates an exportable region of memory; associated with a Space.
    Region = 3,
    /// Server-side endpoint of an IPC.
    Port = 4,
    /// A set of Ports on which a server thread waits.
    Portset = 5,
    /// Associates memory and threads.
    Space = 6,
    /// A thread of control, associated with a Space.
    Thread = 7,
    /// A cross-process handle on a Mapping, Region, Port, Thread or Space;
    /// most often a handle on a Port used for initiating client-side IPC.
    Reference = 8,
}

impl ObjType {
    /// All nine types, in Table 2 order.
    pub const ALL: [ObjType; 9] = [
        ObjType::Mutex,
        ObjType::Cond,
        ObjType::Mapping,
        ObjType::Region,
        ObjType::Port,
        ObjType::Portset,
        ObjType::Space,
        ObjType::Thread,
        ObjType::Reference,
    ];

    /// Decode from a `u32` (as carried in registers and state frames).
    pub fn from_u32(v: u32) -> Option<ObjType> {
        ObjType::ALL.get(v as usize).copied()
    }

    /// The type's display name.
    pub fn name(self) -> &'static str {
        match self {
            ObjType::Mutex => "Mutex",
            ObjType::Cond => "Cond",
            ObjType::Mapping => "Mapping",
            ObjType::Region => "Region",
            ObjType::Port => "Port",
            ObjType::Portset => "Portset",
            ObjType::Space => "Space",
            ObjType::Thread => "Thread",
            ObjType::Reference => "Reference",
        }
    }

    /// The Table 2 description of the type.
    pub fn description(self) -> &'static str {
        match self {
            ObjType::Mutex => "A kernel-supported mutex which is safe for sharing between processes.",
            ObjType::Cond => "A kernel-supported condition variable.",
            ObjType::Mapping => {
                "Encapsulates an imported region of memory; associated with a Space (destination) and Region (source)."
            }
            ObjType::Region => {
                "Encapsulates an exportable region of memory; associated with a Space."
            }
            ObjType::Port => "Server-side endpoint of an IPC.",
            ObjType::Portset => "A set of Ports on which a server thread waits.",
            ObjType::Space => "Associates memory and threads.",
            ObjType::Thread => "A thread of control, associated with a Space.",
            ObjType::Reference => {
                "A cross-process handle on a Mapping, Region, Port, Thread or Space. Most often used as a handle on a Port that is used for initiating client-side IPC."
            }
        }
    }

    /// Size in bytes an object of this type occupies in application memory
    /// (objects live in user pages; their handle is their address).
    pub fn footprint(self) -> u32 {
        // One cache-line-ish slot per object keeps handle arithmetic simple.
        32
    }
}

impl std::fmt::Display for ObjType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_types_in_order() {
        assert_eq!(ObjType::ALL.len(), 9);
        for (i, t) in ObjType::ALL.into_iter().enumerate() {
            assert_eq!(t as u32 as usize, i);
            assert_eq!(ObjType::from_u32(i as u32), Some(t));
        }
        assert_eq!(ObjType::from_u32(9), None);
    }

    #[test]
    fn names_and_descriptions_nonempty() {
        for t in ObjType::ALL {
            assert!(!t.name().is_empty());
            assert!(!t.description().is_empty());
            assert!(t.footprint() > 0);
        }
        assert_eq!(format!("{}", ObjType::Portset), "Portset");
    }
}

//! Result codes returned by kernel entrypoints.
//!
//! On successful *completion* of a system call the kernel writes
//! [`ErrorCode::Success`] (or a specific error) into `eax` and advances the
//! instruction pointer past the trap instruction. While an operation is
//! in progress or restarting, `eax` instead holds the entrypoint number —
//! the two uses never overlap because a restarting call has, by definition,
//! not completed.

/// A kernel result code, delivered in `eax` on system call completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ErrorCode {
    /// The operation completed successfully.
    Success = 0,
    /// `eax` did not name a known entrypoint.
    InvalidEntrypoint = 1,
    /// A handle argument did not name a kernel object.
    InvalidHandle = 2,
    /// A handle named an object of the wrong type.
    WrongType = 3,
    /// The caller lacks the required access to the object.
    PermissionDenied = 4,
    /// A `trylock`-style operation would have had to sleep.
    WouldBlock = 5,
    /// An IPC operation was attempted without a live connection.
    NotConnected = 6,
    /// A connect was attempted while a connection already exists.
    AlreadyConnected = 7,
    /// The IPC peer disconnected (or was destroyed) mid-operation.
    PeerDisconnected = 8,
    /// An argument value was out of range or malformed.
    InvalidArg = 9,
    /// Physical memory exhausted.
    NoMemory = 10,
    /// An object already exists at the given location.
    AlreadyExists = 11,
    /// The operation was interrupted by `thread_interrupt` (only reported by
    /// entrypoints documented as interruption-visible, e.g. `thread_sleep`;
    /// everything else restarts transparently).
    Interrupted = 12,
    /// A `region_search` found no further objects in the range.
    NotFound = 13,
    /// A memory access touched an address with no mapping and no keeper to
    /// page it in (a fatal user error, delivered as an exception).
    BadAddress = 14,
    /// A state buffer was too small for the object's state frame.
    BufferTooSmall = 15,
    /// The target thread is not stopped, for operations requiring it.
    NotStopped = 16,
    /// The IPC peer's receive window was exhausted before the send finished;
    /// the remaining count is in `ecx`.
    Truncated = 17,
}

impl ErrorCode {
    /// Decode a result code from an `eax` value.
    pub fn from_u32(v: u32) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            0 => Success,
            1 => InvalidEntrypoint,
            2 => InvalidHandle,
            3 => WrongType,
            4 => PermissionDenied,
            5 => WouldBlock,
            6 => NotConnected,
            7 => AlreadyConnected,
            8 => PeerDisconnected,
            9 => InvalidArg,
            10 => NoMemory,
            11 => AlreadyExists,
            12 => Interrupted,
            13 => NotFound,
            14 => BadAddress,
            15 => BufferTooSmall,
            16 => NotStopped,
            17 => Truncated,
            _ => return None,
        })
    }

    /// Whether this code means success.
    pub fn is_success(self) -> bool {
        self == ErrorCode::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_codes() {
        for v in 0..18u32 {
            let c = ErrorCode::from_u32(v).expect("code defined");
            assert_eq!(c as u32, v);
        }
        assert_eq!(ErrorCode::from_u32(999), None);
    }

    #[test]
    fn success_is_zero() {
        assert_eq!(ErrorCode::Success as u32, 0);
        assert!(ErrorCode::Success.is_success());
        assert!(!ErrorCode::InvalidHandle.is_success());
    }
}

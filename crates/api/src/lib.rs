#![warn(missing_docs)]
//! The Fluke kernel ABI, shared between the kernel (`fluke-core`) and
//! user-mode code (`fluke-user`, `fluke-workloads`).
//!
//! This crate is the reproduction of the paper's *interface* contribution:
//! the purely atomic system-call API. It defines
//!
//! * the full set of kernel entrypoints with their Table-1 classification
//!   (trivial / short / long / multi-stage) — [`sysnum`];
//! * the register calling conventions, including the in-place parameter
//!   advance rules for multi-stage calls — [`abi`];
//! * result codes — [`error`];
//! * the nine primitive kernel object types of Table 2 — [`objtype`];
//! * the exportable state frames used by `get_state`/`set_state`, encoded as
//!   flat arrays of 32-bit words so ordinary user-mode programs can save and
//!   restore them — [`state`].

pub mod abi;
pub mod error;
pub mod flow;
pub mod objtype;
pub mod state;
pub mod sysnum;

pub use abi::*;
pub use error::ErrorCode;
pub use flow::{flow_op, restart_closure, val_role, FlowGraph, FlowOp, SysSet, ValRole};
pub use objtype::ObjType;
pub use state::{
    CondStateFrame, MappingStateFrame, MutexStateFrame, ObjStateFrame, PortStateFrame,
    PsetStateFrame, RefStateFrame, RegionStateFrame, SpaceStateFrame, ThreadStateFrame,
};
pub use sysnum::{
    ArgRegs, CommonOp, Family, Sys, SysClass, SysDesc, COMMON_OP_ROWS, SYSCALLS, SYSCALL_COUNT,
};

//! Property tests of the ISA's restartability invariants.

use proptest::prelude::*;

use fluke_arch::mem::FlatMem;
use fluke_arch::{Assembler, Cond, CostModel, Cpu, Instr, Program, Reg, Trap, UserMem, UserRegs};

/// A straight-line arithmetic program and a pure-Rust oracle of it.
fn arith_program(ops: &[(u8, u8, u32)]) -> (Program, [u32; 8]) {
    let mut a = Assembler::new("prop");
    let mut model = [0u32; 8];
    for &(op, reg, imm) in ops {
        let r = Reg::ALL[(reg % 8) as usize];
        let i = r.index();
        match op % 5 {
            0 => {
                a.movi(r, imm);
                model[i] = imm;
            }
            1 => {
                a.addi(r, imm);
                model[i] = model[i].wrapping_add(imm);
            }
            2 => {
                a.subi(r, imm);
                model[i] = model[i].wrapping_sub(imm);
            }
            3 => {
                a.emit(Instr::ShlI(r, imm & 31));
                model[i] <<= imm & 31;
            }
            4 => {
                a.emit(Instr::AndI(r, imm));
                model[i] &= imm;
            }
            _ => unreachable!(),
        }
    }
    a.halt();
    (a.finish(), model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CPU agrees with a straight-line oracle on every register.
    #[test]
    fn arithmetic_matches_oracle(ops in proptest::collection::vec((0u8..5, 0u8..8, any::<u32>()), 1..40)) {
        let (prog, model) = arith_program(&ops);
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let mut mem = FlatMem::new(0);
        let cost = CostModel::default();
        loop {
            match cpu.step(&mut regs, &prog, &mut mem, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(t) => panic!("unexpected trap {t:?}"),
            }
        }
        prop_assert_eq!(regs.gpr, model);
    }

    /// RepMovsB interrupted by an arbitrary fault boundary and resumed
    /// copies every byte exactly once (the restartable-instruction law).
    #[test]
    fn rep_movs_resume_is_exact(
        len in 1u32..6000,
        src_off in 0u32..64,
        dst_gap in 1u32..64,
        cut in 0u32..6000,
    ) {
        let src = src_off;
        let dst = src_off + len + dst_gap;
        let total = dst + len;
        let mut a = Assembler::new("copy");
        a.movi(Reg::Esi, src);
        a.movi(Reg::Edi, dst);
        a.movi(Reg::Ecx, len);
        a.emit(Instr::RepMovsB);
        a.halt();
        let prog = a.finish();

        // First run against a memory truncated at `dst + cut`: the copy
        // faults exactly at the first inaccessible destination byte (if
        // the cut lands inside the transfer).
        let cut = cut.min(len);
        let mut small = FlatMem::new((dst + cut) as usize);
        for i in 0..len.min(dst + cut) {
            if src + i < dst + cut {
                small.write_u8(src + i, (i % 251) as u8).unwrap();
            }
        }
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        let mut faulted = false;
        loop {
            match cpu.step(&mut regs, &prog, &mut small, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(Trap::PageFault(f)) => {
                    faulted = true;
                    prop_assert_eq!(f.addr, dst + cut, "fault at the cut");
                    break;
                }
                Some(t) => panic!("unexpected trap {t:?}"),
            }
        }
        prop_assert_eq!(faulted, cut < len);
        // "Resolve" the fault: same bytes, full memory; resume from the
        // exact same registers.
        let mut big = FlatMem::new(total as usize + 8);
        for i in 0..(dst + cut).min(total) {
            let b = small.read_u8(i).unwrap();
            big.write_u8(i, b).unwrap();
        }
        for i in 0..len {
            big.write_u8(src + i, (i % 251) as u8).unwrap();
        }
        loop {
            match cpu.step(&mut regs, &prog, &mut big, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(t) => panic!("unexpected trap after resume {t:?}"),
            }
        }
        for i in 0..len {
            prop_assert_eq!(big.read_u8(dst + i).unwrap(), (i % 251) as u8);
        }
        prop_assert_eq!(regs.get(Reg::Ecx), 0);
        prop_assert_eq!(regs.get(Reg::Esi), src + len);
        prop_assert_eq!(regs.get(Reg::Edi), dst + len);
    }

    /// A counted loop assembled with symbolic labels runs its body exactly
    /// `n` times for any n.
    #[test]
    fn counted_loops_iterate_exactly(n in 1u32..500) {
        let mut a = Assembler::new("loop");
        a.movi(Reg::Ecx, n);
        a.xor(Reg::Ebx, Reg::Ebx);
        a.label("top");
        a.addi(Reg::Ebx, 1);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(Cond::Ne, "top");
        a.halt();
        let prog = a.finish();
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let mut mem = FlatMem::new(0);
        let cost = CostModel::default();
        loop {
            match cpu.step(&mut regs, &prog, &mut mem, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(t) => panic!("unexpected {t:?}"),
            }
        }
        prop_assert_eq!(regs.get(Reg::Ebx), n);
    }

    /// The cycle clock is deterministic: running the same program twice
    /// charges exactly the same cycles.
    #[test]
    fn simulation_is_deterministic(ops in proptest::collection::vec((0u8..5, 0u8..8, any::<u32>()), 1..30)) {
        let (prog, _) = arith_program(&ops);
        let run = || {
            let mut cpu = Cpu::new(0);
            let mut regs = UserRegs::new();
            let mut mem = FlatMem::new(0);
            let cost = CostModel::default();
            loop {
                match cpu.step(&mut regs, &prog, &mut mem, &cost) {
                    None => continue,
                    Some(Trap::Halt) => break,
                    Some(t) => panic!("unexpected {t:?}"),
                }
            }
            (cpu.now, regs)
        };
        prop_assert_eq!(run(), run());
    }
}

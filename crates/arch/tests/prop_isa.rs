//! Property tests of the ISA's restartability invariants.
//!
//! The container builds offline, so instead of an external property-test
//! framework these quantify over inputs drawn from a small deterministic
//! PRNG — same laws, reproducible cases.

use fluke_arch::mem::FlatMem;
use fluke_arch::{Assembler, Cond, CostModel, Cpu, Instr, Program, Reg, Trap, UserMem, UserRegs};

/// Deterministic splitmix64 generator for test-case synthesis.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.next_u32() % (hi - lo)
    }
}

/// A straight-line arithmetic program and a pure-Rust oracle of it.
fn arith_program(ops: &[(u8, u8, u32)]) -> (Program, [u32; 8]) {
    let mut a = Assembler::new("prop");
    let mut model = [0u32; 8];
    for &(op, reg, imm) in ops {
        let r = Reg::ALL[(reg % 8) as usize];
        let i = r.index();
        match op % 5 {
            0 => {
                a.movi(r, imm);
                model[i] = imm;
            }
            1 => {
                a.addi(r, imm);
                model[i] = model[i].wrapping_add(imm);
            }
            2 => {
                a.subi(r, imm);
                model[i] = model[i].wrapping_sub(imm);
            }
            3 => {
                a.emit(Instr::ShlI(r, imm & 31));
                model[i] <<= imm & 31;
            }
            4 => {
                a.emit(Instr::AndI(r, imm));
                model[i] &= imm;
            }
            _ => unreachable!(),
        }
    }
    a.halt();
    (a.finish(), model)
}

fn random_ops(rng: &mut Rng, max_len: u32) -> Vec<(u8, u8, u32)> {
    let len = rng.range(1, max_len);
    (0..len)
        .map(|_| (rng.range(0, 5) as u8, rng.range(0, 8) as u8, rng.next_u32()))
        .collect()
}

/// The CPU agrees with a straight-line oracle on every register.
#[test]
fn arithmetic_matches_oracle() {
    let mut rng = Rng(0xA11C_E5ED);
    for case in 0..64 {
        let ops = random_ops(&mut rng, 40);
        let (prog, model) = arith_program(&ops);
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let mut mem = FlatMem::new(0);
        let cost = CostModel::default();
        loop {
            match cpu.step(&mut regs, &prog, &mut mem, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(t) => panic!("unexpected trap {t:?}"),
            }
        }
        assert_eq!(regs.gpr, model, "case {case}: {ops:?}");
    }
}

/// RepMovsB interrupted by an arbitrary fault boundary and resumed
/// copies every byte exactly once (the restartable-instruction law).
#[test]
fn rep_movs_resume_is_exact() {
    let mut rng = Rng(0xC0FF_EE00);
    for case in 0..64 {
        let len = rng.range(1, 6000);
        let src_off = rng.range(0, 64);
        let dst_gap = rng.range(1, 64);
        let cut = rng.range(0, 6000);

        let src = src_off;
        let dst = src_off + len + dst_gap;
        let total = dst + len;
        let mut a = Assembler::new("copy");
        a.movi(Reg::Esi, src);
        a.movi(Reg::Edi, dst);
        a.movi(Reg::Ecx, len);
        a.emit(Instr::RepMovsB);
        a.halt();
        let prog = a.finish();

        // First run against a memory truncated at `dst + cut`: the copy
        // faults exactly at the first inaccessible destination byte (if
        // the cut lands inside the transfer).
        let cut = cut.min(len);
        let mut small = FlatMem::new((dst + cut) as usize);
        for i in 0..len.min(dst + cut) {
            if src + i < dst + cut {
                small.write_u8(src + i, (i % 251) as u8).unwrap();
            }
        }
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        let mut faulted = false;
        loop {
            match cpu.step(&mut regs, &prog, &mut small, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(Trap::PageFault(f)) => {
                    faulted = true;
                    assert_eq!(f.addr, dst + cut, "case {case}: fault at the cut");
                    break;
                }
                Some(t) => panic!("unexpected trap {t:?}"),
            }
        }
        assert_eq!(faulted, cut < len, "case {case}");
        // "Resolve" the fault: same bytes, full memory; resume from the
        // exact same registers.
        let mut big = FlatMem::new(total as usize + 8);
        for i in 0..(dst + cut).min(total) {
            let b = small.read_u8(i).unwrap();
            big.write_u8(i, b).unwrap();
        }
        for i in 0..len {
            big.write_u8(src + i, (i % 251) as u8).unwrap();
        }
        loop {
            match cpu.step(&mut regs, &prog, &mut big, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(t) => panic!("unexpected trap after resume {t:?}"),
            }
        }
        for i in 0..len {
            assert_eq!(
                big.read_u8(dst + i).unwrap(),
                (i % 251) as u8,
                "case {case}"
            );
        }
        assert_eq!(regs.get(Reg::Ecx), 0);
        assert_eq!(regs.get(Reg::Esi), src + len);
        assert_eq!(regs.get(Reg::Edi), dst + len);
    }
}

/// A counted loop assembled with symbolic labels runs its body exactly
/// `n` times for any n.
#[test]
fn counted_loops_iterate_exactly() {
    let mut rng = Rng(0x5EED_1009);
    for _ in 0..32 {
        let n = rng.range(1, 500);
        let mut a = Assembler::new("loop");
        a.movi(Reg::Ecx, n);
        a.xor(Reg::Ebx, Reg::Ebx);
        a.label("top");
        a.addi(Reg::Ebx, 1);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(Cond::Ne, "top");
        a.halt();
        let prog = a.finish();
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let mut mem = FlatMem::new(0);
        let cost = CostModel::default();
        loop {
            match cpu.step(&mut regs, &prog, &mut mem, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(t) => panic!("unexpected {t:?}"),
            }
        }
        assert_eq!(regs.get(Reg::Ebx), n);
    }
}

/// The cycle clock is deterministic: running the same program twice
/// charges exactly the same cycles.
#[test]
fn simulation_is_deterministic() {
    let mut rng = Rng(0xDE7E_2017);
    for _ in 0..32 {
        let ops = random_ops(&mut rng, 30);
        let (prog, _) = arith_program(&ops);
        let run = || {
            let mut cpu = Cpu::new(0);
            let mut regs = UserRegs::new();
            let mut mem = FlatMem::new(0);
            let cost = CostModel::default();
            loop {
                match cpu.step(&mut regs, &prog, &mut mem, &cost) {
                    None => continue,
                    Some(Trap::Halt) => break,
                    Some(t) => panic!("unexpected {t:?}"),
                }
            }
            (cpu.now, regs)
        };
        assert_eq!(run(), run());
    }
}

//! The simulated CPU: executes user-mode instructions and reports traps.
//!
//! The CPU is mechanism only: it advances a thread's [`UserRegs`] over its
//! [`Program`], charging cycles, until it traps or reaches a deadline (the
//! next timer event, set by the kernel). Interrupt delivery, scheduling and
//! fault handling are kernel policy in `fluke-core`.

use crate::cost::{CostModel, Cycles};
use crate::isa::{Cond, Instr};
use crate::mem::UserMem;
use crate::program::Program;
use crate::regs::{Reg, UserRegs, FLAG_LT, FLAG_ZF};
use crate::trap::Trap;

/// Maximum bytes a string instruction moves per [`Cpu::step`]. Like real
/// hardware, string instructions are interruptible *between* chunks: the
/// registers always hold exact partial progress and `eip` stays at the
/// instruction until the count reaches zero.
pub const REP_CHUNK: u32 = 1024;

/// Why [`Cpu::run_user`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The thread trapped; `eip` points at the trapping instruction.
    Trapped(Trap),
    /// The deadline passed with the thread still running user code.
    DeadlineReached,
}

/// A simulated processor: an id plus a local cycle clock.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Processor number (0-based).
    pub id: usize,
    /// Local clock in simulated cycles.
    pub now: Cycles,
}

impl Cpu {
    /// Create CPU `id` with its clock at zero.
    pub fn new(id: usize) -> Self {
        Cpu { id, now: 0 }
    }

    /// Execute exactly one instruction (or one chunk of a string
    /// instruction), charging cycles to the CPU clock.
    ///
    /// Returns the trap, if any. On a trap — including a page fault halfway
    /// through a string instruction — `eip` still points at the instruction
    /// and the registers hold exact partial progress, so resolving the
    /// condition and re-running resumes correctly.
    pub fn step(
        &mut self,
        regs: &mut UserRegs,
        prog: &Program,
        mem: &mut dyn UserMem,
        cost: &CostModel,
    ) -> Option<Trap> {
        let instr = match prog.fetch(regs.eip) {
            Some(i) => i,
            None => {
                self.now += cost.user_instr;
                return Some(Trap::Illegal);
            }
        };
        match instr {
            Instr::MovI(d, v) => {
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::Mov(d, s) => {
                let v = regs.get(s);
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::Add(d, s) => {
                let v = regs.get(d).wrapping_add(regs.get(s));
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::AddI(d, i) => {
                let v = regs.get(d).wrapping_add(i);
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::Sub(d, s) => {
                let v = regs.get(d).wrapping_sub(regs.get(s));
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::SubI(d, i) => {
                let v = regs.get(d).wrapping_sub(i);
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::Mul(d, s) => {
                let v = regs.get(d).wrapping_mul(regs.get(s));
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::Xor(d, s) => {
                let v = regs.get(d) ^ regs.get(s);
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::AndI(d, i) => {
                let v = regs.get(d) & i;
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::ShrI(d, i) => {
                let v = regs.get(d) >> (i & 31);
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::ShlI(d, i) => {
                let v = regs.get(d) << (i & 31);
                regs.set(d, v);
                self.retire(regs, cost)
            }
            Instr::Cmp(l, r) => {
                let (l, r) = (regs.get(l), regs.get(r));
                regs.set_flag(FLAG_ZF, l == r);
                regs.set_flag(FLAG_LT, l < r);
                self.retire(regs, cost)
            }
            Instr::CmpI(l, i) => {
                let l = regs.get(l);
                regs.set_flag(FLAG_ZF, l == i);
                regs.set_flag(FLAG_LT, l < i);
                self.retire(regs, cost)
            }
            Instr::Jmp(c, target) => {
                let taken = match c {
                    Cond::Always => true,
                    Cond::Eq => regs.flag(FLAG_ZF),
                    Cond::Ne => !regs.flag(FLAG_ZF),
                    Cond::Lt => regs.flag(FLAG_LT),
                    Cond::Ge => !regs.flag(FLAG_LT),
                };
                self.now += cost.user_instr;
                if taken {
                    regs.eip = target;
                } else {
                    regs.eip += 1;
                }
                None
            }
            Instr::Load(d, b, off) => {
                let addr = regs.get(b).wrapping_add(off as u32);
                self.now += cost.user_instr;
                match mem.read_u32(addr) {
                    Ok(v) => {
                        regs.set(d, v);
                        regs.eip += 1;
                        None
                    }
                    Err(f) => Some(Trap::PageFault(f)),
                }
            }
            Instr::Store(b, off, s) => {
                let addr = regs.get(b).wrapping_add(off as u32);
                self.now += cost.user_instr;
                match mem.write_u32(addr, regs.get(s)) {
                    Ok(()) => {
                        regs.eip += 1;
                        None
                    }
                    Err(f) => Some(Trap::PageFault(f)),
                }
            }
            Instr::LoadB(d, b, off) => {
                let addr = regs.get(b).wrapping_add(off as u32);
                self.now += cost.user_instr;
                match mem.read_u8(addr) {
                    Ok(v) => {
                        regs.set(d, v as u32);
                        regs.eip += 1;
                        None
                    }
                    Err(f) => Some(Trap::PageFault(f)),
                }
            }
            Instr::StoreB(b, off, s) => {
                let addr = regs.get(b).wrapping_add(off as u32);
                self.now += cost.user_instr;
                match mem.write_u8(addr, regs.get(s) as u8) {
                    Ok(()) => {
                        regs.eip += 1;
                        None
                    }
                    Err(f) => Some(Trap::PageFault(f)),
                }
            }
            Instr::Push(s) => {
                let sp = regs.get(Reg::Esp).wrapping_sub(4);
                self.now += cost.user_instr;
                match mem.write_u32(sp, regs.get(s)) {
                    Ok(()) => {
                        regs.set(Reg::Esp, sp);
                        regs.eip += 1;
                        None
                    }
                    Err(f) => Some(Trap::PageFault(f)),
                }
            }
            Instr::Pop(d) => {
                let sp = regs.get(Reg::Esp);
                self.now += cost.user_instr;
                match mem.read_u32(sp) {
                    Ok(v) => {
                        regs.set(d, v);
                        regs.set(Reg::Esp, sp.wrapping_add(4));
                        regs.eip += 1;
                        None
                    }
                    Err(f) => Some(Trap::PageFault(f)),
                }
            }
            Instr::RepMovsB => {
                // Bulk page-run copy, semantically identical to the old
                // byte loop: cycles charged per completed byte, registers
                // advanced by exactly the bytes completed, fault aborts
                // with eip unchanged.
                self.now += cost.user_instr;
                let mut count = regs.get(Reg::Ecx);
                let mut src = regs.get(Reg::Esi);
                let mut dst = regs.get(Reg::Edi);
                let mut remaining = count.min(REP_CHUNK);
                let mut buf = [0u8; REP_CHUNK as usize];
                while remaining > 0 {
                    // A byte-wise ascending copy with dst inside
                    // (src, src+n) replicates the source with period
                    // d = dst - src; block copies of at most d bytes
                    // reproduce that exactly. Backward/non-overlap needs
                    // no clamp.
                    let d = dst.wrapping_sub(src);
                    let block = if d > 0 && d < remaining { d } else { remaining };
                    let (rdone, rfault) = match mem.read_bytes(src, &mut buf[..block as usize]) {
                        Ok(()) => (block, None),
                        Err(e) => (e.done, Some(e.fault)),
                    };
                    // Bytes read before a read fault are still written —
                    // byte-wise order writes byte j before reading byte
                    // j+1. A write fault precedes the read fault, since
                    // write j happens before read k for j < k.
                    let (done, fault) = match mem.write_bytes(dst, &buf[..rdone as usize]) {
                        Ok(()) => (rdone, rfault),
                        Err(e) => (e.done, Some(e.fault)),
                    };
                    src = src.wrapping_add(done);
                    dst = dst.wrapping_add(done);
                    count -= done;
                    remaining -= done;
                    self.now += cost.user_string_byte_per * done as Cycles;
                    if let Some(f) = fault {
                        self.writeback_movs(regs, src, dst, count);
                        return Some(Trap::PageFault(f));
                    }
                }
                self.writeback_movs(regs, src, dst, count);
                if count == 0 {
                    regs.eip += 1;
                }
                None
            }
            Instr::RepStosB => {
                self.now += cost.user_instr;
                let val = regs.get(Reg::Eax) as u8;
                let mut count = regs.get(Reg::Ecx);
                let mut dst = regs.get(Reg::Edi);
                let chunk = count.min(REP_CHUNK);
                let buf = [val; REP_CHUNK as usize];
                let (done, fault) = match mem.write_bytes(dst, &buf[..chunk as usize]) {
                    Ok(()) => (chunk, None),
                    Err(e) => (e.done, Some(e.fault)),
                };
                dst = dst.wrapping_add(done);
                count -= done;
                self.now += cost.user_string_byte_per * done as Cycles;
                regs.set(Reg::Edi, dst);
                regs.set(Reg::Ecx, count);
                if let Some(f) = fault {
                    return Some(Trap::PageFault(f));
                }
                if count == 0 {
                    regs.eip += 1;
                }
                None
            }
            Instr::Syscall => {
                // `eip` stays at the trap instruction; the kernel advances
                // it on completion or leaves it for a restart.
                self.now += cost.user_instr;
                Some(Trap::Syscall)
            }
            Instr::Compute(n) => {
                self.now += n as Cycles;
                regs.eip += 1;
                None
            }
            Instr::Halt => {
                self.now += cost.user_instr;
                Some(Trap::Halt)
            }
            Instr::Nop => self.retire(regs, cost),
        }
    }

    /// Run user code until a trap or until the clock reaches `deadline`.
    pub fn run_user(
        &mut self,
        regs: &mut UserRegs,
        prog: &Program,
        mem: &mut dyn UserMem,
        cost: &CostModel,
        deadline: Cycles,
    ) -> StepOutcome {
        while self.now < deadline {
            if let Some(trap) = self.step(regs, prog, mem, cost) {
                return StepOutcome::Trapped(trap);
            }
        }
        StepOutcome::DeadlineReached
    }

    #[inline]
    fn retire(&mut self, regs: &mut UserRegs, cost: &CostModel) -> Option<Trap> {
        self.now += cost.user_instr;
        regs.eip += 1;
        None
    }

    #[inline]
    fn writeback_movs(&self, regs: &mut UserRegs, src: u32, dst: u32, count: u32) {
        regs.set(Reg::Esi, src);
        regs.set(Reg::Edi, dst);
        regs.set(Reg::Ecx, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::mem::FlatMem;

    fn run_to_halt(prog: &Program, mem: &mut FlatMem) -> (UserRegs, Cycles) {
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        loop {
            match cpu.step(&mut regs, prog, mem, &cost) {
                None => continue,
                Some(Trap::Halt) => return (regs, cpu.now),
                Some(t) => panic!("unexpected trap {t:?} at eip={}", regs.eip),
            }
        }
    }

    #[test]
    fn arithmetic_and_branches() {
        // Sum 1..=5 into ebx.
        let mut a = Assembler::new("sum");
        a.movi(Reg::Ecx, 5);
        a.xor(Reg::Ebx, Reg::Ebx);
        a.label("loop");
        a.add(Reg::Ebx, Reg::Ecx);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(Cond::Ne, "loop");
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(0);
        let (regs, _) = run_to_halt(&p, &mut mem);
        assert_eq!(regs.get(Reg::Ebx), 15);
    }

    #[test]
    fn loads_stores_and_stack() {
        let mut a = Assembler::new("mem");
        a.movi(Reg::Esp, 64);
        a.movi(Reg::Eax, 0x1234);
        a.emit(Instr::Push(Reg::Eax));
        a.movi(Reg::Eax, 0);
        a.emit(Instr::Pop(Reg::Ebx));
        a.movi(Reg::Edx, 0xff);
        a.storeb(Reg::Esp, -8, Reg::Edx);
        a.loadb(Reg::Ecx, Reg::Esp, -8);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(64);
        let (regs, _) = run_to_halt(&p, &mut mem);
        assert_eq!(regs.get(Reg::Ebx), 0x1234);
        assert_eq!(regs.get(Reg::Ecx), 0xff);
        assert_eq!(regs.get(Reg::Esp), 64);
    }

    #[test]
    fn rep_movs_copies_and_advances_registers() {
        let mut a = Assembler::new("copy");
        a.movi(Reg::Esi, 0);
        a.movi(Reg::Edi, 100);
        a.movi(Reg::Ecx, 50);
        a.emit(Instr::RepMovsB);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(256);
        for i in 0..50 {
            mem.write_u8(i, i as u8).unwrap();
        }
        let (regs, _) = run_to_halt(&p, &mut mem);
        assert_eq!(regs.get(Reg::Ecx), 0);
        assert_eq!(regs.get(Reg::Esi), 50);
        assert_eq!(regs.get(Reg::Edi), 150);
        for i in 0..50u32 {
            assert_eq!(mem.read_u8(100 + i).unwrap(), i as u8);
        }
    }

    #[test]
    fn rep_movs_fault_preserves_partial_progress() {
        // Destination runs off the end of memory halfway through: the fault
        // must leave the registers at the exact partial-progress point, and
        // eip still at the string instruction.
        let mut a = Assembler::new("copyfault");
        a.movi(Reg::Esi, 0);
        a.movi(Reg::Edi, 120);
        a.movi(Reg::Ecx, 16);
        a.emit(Instr::RepMovsB);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(128); // dst bytes 120..136, faults at 128
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        let trap = loop {
            if let Some(t) = cpu.step(&mut regs, &p, &mut mem, &cost) {
                break t;
            }
        };
        match trap {
            Trap::PageFault(f) => assert_eq!(f.addr, 128),
            t => panic!("expected page fault, got {t:?}"),
        }
        assert_eq!(regs.get(Reg::Ecx), 8, "8 bytes remain");
        assert_eq!(regs.get(Reg::Esi), 8);
        assert_eq!(regs.get(Reg::Edi), 128);
        // eip still at the RepMovsB instruction (index 3).
        assert_eq!(regs.eip, 3);
    }

    #[test]
    fn rep_movs_resumes_after_fault_resolution() {
        // Simulate the kernel resolving the fault by growing memory, then
        // re-running: the copy must complete with correct bytes.
        let mut a = Assembler::new("copyresume");
        a.movi(Reg::Esi, 0);
        a.movi(Reg::Edi, 120);
        a.movi(Reg::Ecx, 16);
        a.emit(Instr::RepMovsB);
        a.halt();
        let p = a.finish();
        let mut small = FlatMem::new(128);
        for i in 0..16 {
            small.write_u8(i, 0x40 + i as u8).unwrap();
        }
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        // Run to the fault.
        loop {
            if let Some(t) = cpu.step(&mut regs, &p, &mut small, &cost) {
                assert!(matches!(t, Trap::PageFault(_)));
                break;
            }
        }
        // "Resolve" the fault: bigger memory with same contents.
        let mut big = FlatMem::new(256);
        for i in 0..128u32 {
            let b = small.read_u8(i).unwrap();
            big.write_u8(i, b).unwrap();
        }
        // Resume: same regs, eip unchanged.
        loop {
            match cpu.step(&mut regs, &p, &mut big, &cost) {
                None => continue,
                Some(Trap::Halt) => break,
                Some(t) => panic!("unexpected {t:?}"),
            }
        }
        for i in 0..16u32 {
            assert_eq!(big.read_u8(120 + i).unwrap(), 0x40 + i as u8);
        }
    }

    #[test]
    fn rep_stos_fills_memory() {
        let mut a = Assembler::new("fill");
        a.movi(Reg::Eax, 0xaa);
        a.movi(Reg::Edi, 10);
        a.movi(Reg::Ecx, 20);
        a.emit(Instr::RepStosB);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(64);
        let (regs, _) = run_to_halt(&p, &mut mem);
        assert_eq!(regs.get(Reg::Ecx), 0);
        for i in 10..30 {
            assert_eq!(mem.read_u8(i).unwrap(), 0xaa);
        }
        assert_eq!(mem.read_u8(9).unwrap(), 0);
        assert_eq!(mem.read_u8(30).unwrap(), 0);
    }

    #[test]
    fn large_rep_movs_chunks_but_completes() {
        let n = 3 * REP_CHUNK + 17;
        let mut a = Assembler::new("bigcopy");
        a.movi(Reg::Esi, 0);
        a.movi(Reg::Edi, n);
        a.movi(Reg::Ecx, n);
        a.emit(Instr::RepMovsB);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(2 * n as usize + 16);
        mem.write_u8(n - 1, 7).unwrap();
        let (regs, _) = run_to_halt(&p, &mut mem);
        assert_eq!(regs.get(Reg::Ecx), 0);
        assert_eq!(mem.read_u8(2 * n - 1).unwrap(), 7);
    }

    #[test]
    fn rep_movs_forward_overlap_replicates_pattern() {
        // dst = src + 3 inside the source range: x86 byte-wise semantics
        // replicate the first 3 bytes with period 3. The block fast path
        // must reproduce this exactly.
        let mut a = Assembler::new("overlap");
        a.movi(Reg::Esi, 10);
        a.movi(Reg::Edi, 13);
        a.movi(Reg::Ecx, 12);
        a.emit(Instr::RepMovsB);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(64);
        for (i, b) in [1u8, 2, 3].iter().enumerate() {
            mem.write_u8(10 + i as u32, *b).unwrap();
        }
        let (regs, _) = run_to_halt(&p, &mut mem);
        assert_eq!(regs.get(Reg::Ecx), 0);
        for i in 0..12u32 {
            assert_eq!(
                mem.read_u8(13 + i).unwrap(),
                [1, 2, 3][(i % 3) as usize],
                "byte {i}"
            );
        }
    }

    #[test]
    fn rep_movs_backward_overlap_copies_cleanly() {
        // dst = src - 4 with count 12: ascending byte-wise copy never
        // clobbers an unread source byte, so the result is a plain copy.
        let mut a = Assembler::new("backoverlap");
        a.movi(Reg::Esi, 20);
        a.movi(Reg::Edi, 16);
        a.movi(Reg::Ecx, 12);
        a.emit(Instr::RepMovsB);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(64);
        let data: Vec<u8> = (0..12).map(|i| 0x30 + i as u8).collect();
        for (i, b) in data.iter().enumerate() {
            mem.write_u8(20 + i as u32, *b).unwrap();
        }
        let (_, _) = run_to_halt(&p, &mut mem);
        for (i, b) in data.iter().enumerate() {
            assert_eq!(mem.read_u8(16 + i as u32).unwrap(), *b, "byte {i}");
        }
    }

    #[test]
    fn rep_movs_cycle_charge_matches_byte_count() {
        // The bulk rewrite must charge exactly the per-byte cost model:
        // one user_instr per step plus user_string_byte_per per byte.
        let n = REP_CHUNK + 100; // two steps
        let mut a = Assembler::new("cycles");
        a.movi(Reg::Esi, 0);
        a.movi(Reg::Edi, n);
        a.movi(Reg::Ecx, n);
        a.emit(Instr::RepMovsB);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(2 * n as usize);
        let (_, cycles) = run_to_halt(&p, &mut mem);
        let cost = CostModel::default();
        let expect = 3 * cost.user_instr          // three movi
            + 2 * cost.user_instr                 // two RepMovsB steps
            + n as Cycles * cost.user_string_byte_per
            + cost.user_instr; // halt
        assert_eq!(cycles, expect);
    }

    #[test]
    fn syscall_leaves_eip_at_trap_instruction() {
        let mut a = Assembler::new("sys");
        a.movi(Reg::Eax, 42);
        a.syscall();
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(0);
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        assert_eq!(cpu.step(&mut regs, &p, &mut mem, &cost), None);
        assert_eq!(
            cpu.step(&mut regs, &p, &mut mem, &cost),
            Some(Trap::Syscall)
        );
        assert_eq!(regs.eip, 1, "eip still at the syscall instruction");
        // Kernel-style restart: re-stepping re-traps.
        assert_eq!(
            cpu.step(&mut regs, &p, &mut mem, &cost),
            Some(Trap::Syscall)
        );
        // Kernel-style completion: advance eip, next step halts.
        regs.eip += 1;
        assert_eq!(cpu.step(&mut regs, &p, &mut mem, &cost), Some(Trap::Halt));
    }

    #[test]
    fn compute_charges_cycles() {
        let mut a = Assembler::new("c");
        a.compute(500);
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(0);
        let (_, cycles) = run_to_halt(&p, &mut mem);
        let cost = CostModel::default();
        assert_eq!(cycles, 500 + cost.user_instr);
    }

    #[test]
    fn running_off_program_end_is_illegal() {
        let p = Program::new("empty", vec![Instr::Nop]);
        let mut mem = FlatMem::new(0);
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        assert_eq!(cpu.step(&mut regs, &p, &mut mem, &cost), None);
        assert_eq!(
            cpu.step(&mut regs, &p, &mut mem, &cost),
            Some(Trap::Illegal)
        );
    }

    #[test]
    fn push_fault_leaves_esp_unchanged() {
        // A push into unmapped stack memory must not commit the esp
        // decrement: the instruction restarts whole after the fault.
        let mut a = Assembler::new("pushfault");
        a.movi(Reg::Esp, 2); // next push writes at addr -2 → wraps → fault
        a.emit(Instr::Push(Reg::Eax));
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(16);
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        cpu.step(&mut regs, &p, &mut mem, &cost);
        let t = cpu.step(&mut regs, &p, &mut mem, &cost);
        assert!(matches!(t, Some(Trap::PageFault(_))));
        assert_eq!(regs.get(Reg::Esp), 2, "esp must not move on a fault");
        assert_eq!(regs.eip, 1, "eip still at the push");
    }

    #[test]
    fn pop_fault_leaves_esp_unchanged() {
        let mut a = Assembler::new("popfault");
        a.movi(Reg::Esp, 1000); // beyond the 16-byte memory
        a.emit(Instr::Pop(Reg::Ebx));
        a.halt();
        let p = a.finish();
        let mut mem = FlatMem::new(16);
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        cpu.step(&mut regs, &p, &mut mem, &cost);
        let t = cpu.step(&mut regs, &p, &mut mem, &cost);
        assert!(matches!(t, Some(Trap::PageFault(_))));
        assert_eq!(regs.get(Reg::Esp), 1000);
        assert_eq!(regs.get(Reg::Ebx), 0, "pop target untouched on fault");
    }

    #[test]
    fn branch_conditions_cover_all_flag_states() {
        // (lhs, rhs) → which of Eq/Ne/Lt/Ge should branch.
        for (l, r, eq, lt) in [
            (5u32, 5u32, true, false),
            (3, 9, false, true),
            (9, 3, false, false),
        ] {
            let mut a = Assembler::new("flags");
            a.movi(Reg::Ebx, l);
            a.movi(Reg::Ecx, r);
            a.cmp(Reg::Ebx, Reg::Ecx);
            a.movi(Reg::Edx, 0);
            a.jcc(Cond::Eq, "eq");
            a.jmp("after_eq");
            a.label("eq");
            a.addi(Reg::Edx, 1);
            a.label("after_eq");
            a.cmp(Reg::Ebx, Reg::Ecx);
            a.jcc(Cond::Lt, "lt");
            a.jmp("end");
            a.label("lt");
            a.addi(Reg::Edx, 2);
            a.label("end");
            a.halt();
            let p = a.finish();
            let mut mem = FlatMem::new(0);
            let (regs, _) = run_to_halt(&p, &mut mem);
            let expect = (eq as u32) + 2 * (lt as u32);
            assert_eq!(regs.get(Reg::Edx), expect, "lhs={l} rhs={r}");
        }
    }

    #[test]
    fn run_user_honors_deadline() {
        let mut a = Assembler::new("spin");
        a.label("top");
        a.jmp("top");
        let p = a.finish();
        let mut mem = FlatMem::new(0);
        let mut cpu = Cpu::new(0);
        let mut regs = UserRegs::new();
        let cost = CostModel::default();
        let out = cpu.run_user(&mut regs, &p, &mut mem, &cost, 1000);
        assert_eq!(out, StepOutcome::DeadlineReached);
        assert!(cpu.now >= 1000);
    }
}

//! The user-visible register file.
//!
//! Fluke's atomic API requires that *every* long-term blocking state of a
//! thread be representable in its user-visible register state (paper §4).
//! On the x86 the register file is small, so Fluke added two 32-bit
//! *pseudo-registers* maintained by the kernel to hold intermediate IPC state
//! (paper §4.4, "Thread state size"). We reproduce exactly that layout:
//! eight general-purpose registers, an instruction pointer, a flags word, and
//! two pseudo-registers.

/// Zero flag: set by comparison instructions when the operands were equal.
pub const FLAG_ZF: u32 = 1 << 0;
/// Less-than flag: set by comparison instructions when `lhs < rhs` (unsigned).
pub const FLAG_LT: u32 = 1 << 1;

/// A general-purpose register name.
///
/// The names mirror the x86 so the paper's examples translate directly: IPC
/// transfers keep their source pointer in `esi`/`edi` and their remaining
/// byte count in `ecx`, advancing them in place as data moves — the same
/// convention as the x86 string instructions the paper cites as its analogy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; holds the syscall entrypoint number on kernel entry and
    /// the result code on completion.
    Eax = 0,
    /// First syscall argument.
    Ebx = 1,
    /// Count register; byte counts for string instructions and IPC transfers.
    Ecx = 2,
    /// Second value/result register.
    Edx = 3,
    /// Source pointer for string instructions and IPC sends.
    Esi = 4,
    /// Destination pointer for string instructions and IPC receives.
    Edi = 5,
    /// Frame/base register (free for user code).
    Ebp = 6,
    /// Stack pointer (free for user code; the ISA has push/pop helpers).
    Esp = 7,
}

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ebx,
        Reg::Ecx,
        Reg::Edx,
        Reg::Esi,
        Reg::Edi,
        Reg::Ebp,
        Reg::Esp,
    ];

    /// The register's index in [`UserRegs::gpr`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The conventional lower-case name ("eax", "ebx", ...).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ebx => "ebx",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ebp => "ebp",
            Reg::Esp => "esp",
        }
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The complete user-visible register state of a thread.
///
/// This structure *is* the continuation: per the paper's central claim, when
/// a thread blocks for an indefinite time the kernel has already written all
/// partial progress back into these registers, so they fully describe how to
/// resume (or checkpoint, or migrate) the thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserRegs {
    /// General-purpose registers, indexed by [`Reg::index`].
    pub gpr: [u32; 8],
    /// Instruction pointer: an index into the thread's [`crate::Program`].
    /// On a trap it points *at* the trapping instruction.
    pub eip: u32,
    /// Condition flags ([`FLAG_ZF`], [`FLAG_LT`]).
    pub eflags: u32,
    /// Kernel-maintained pseudo-registers holding intermediate multi-stage
    /// IPC state (paper §4.4). User code only touches these when saving and
    /// restoring thread state.
    pub pr: [u32; 2],
}

impl UserRegs {
    /// Register state of a freshly created thread: everything zeroed, entry
    /// point at instruction 0.
    pub fn new() -> Self {
        UserRegs {
            gpr: [0; 8],
            eip: 0,
            eflags: 0,
            pr: [0; 2],
        }
    }

    /// Read a general-purpose register.
    #[inline]
    pub fn get(&self, r: Reg) -> u32 {
        self.gpr[r.index()]
    }

    /// Write a general-purpose register.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u32) {
        self.gpr[r.index()] = v;
    }

    /// Set or clear a flag bit.
    #[inline]
    pub fn set_flag(&mut self, flag: u32, on: bool) {
        if on {
            self.eflags |= flag;
        } else {
            self.eflags &= !flag;
        }
    }

    /// Test a flag bit.
    #[inline]
    pub fn flag(&self, flag: u32) -> bool {
        self.eflags & flag != 0
    }
}

impl Default for UserRegs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Display for UserRegs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in Reg::ALL {
            write!(f, "{}={:#010x} ", r, self.get(r))?;
        }
        write!(
            f,
            "eip={:#x} eflags={:#x} pr0={:#x} pr1={:#x}",
            self.eip, self.eflags, self.pr[0], self.pr[1]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_regs_are_zeroed() {
        let r = UserRegs::new();
        for reg in Reg::ALL {
            assert_eq!(r.get(reg), 0);
        }
        assert_eq!(r.eip, 0);
        assert_eq!(r.pr, [0, 0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut r = UserRegs::new();
        for (i, reg) in Reg::ALL.into_iter().enumerate() {
            r.set(reg, 0x1000 + i as u32);
        }
        for (i, reg) in Reg::ALL.into_iter().enumerate() {
            assert_eq!(r.get(reg), 0x1000 + i as u32);
        }
    }

    #[test]
    fn flags_set_and_clear() {
        let mut r = UserRegs::new();
        r.set_flag(FLAG_ZF, true);
        assert!(r.flag(FLAG_ZF));
        assert!(!r.flag(FLAG_LT));
        r.set_flag(FLAG_LT, true);
        r.set_flag(FLAG_ZF, false);
        assert!(!r.flag(FLAG_ZF));
        assert!(r.flag(FLAG_LT));
    }

    #[test]
    fn reg_names_match_encoding_order() {
        assert_eq!(Reg::Eax.index(), 0);
        assert_eq!(Reg::Esp.index(), 7);
        assert_eq!(Reg::Ecx.name(), "ecx");
        assert_eq!(format!("{}", Reg::Esi), "esi");
    }

    #[test]
    fn json_roundtrip() {
        use fluke_json::Json;
        let mut r = UserRegs::new();
        r.set(Reg::Eax, 42);
        r.eip = 7;
        r.pr = [1, 2];
        let mut j = Json::obj();
        j.set(
            "gpr",
            Json::Arr(r.gpr.iter().map(|&w| Json::from_u32(w)).collect()),
        );
        j.set("eip", Json::from_u32(r.eip));
        j.set("eflags", Json::from_u32(r.eflags));
        j.set(
            "pr",
            Json::Arr(r.pr.iter().map(|&w| Json::from_u32(w)).collect()),
        );
        let parsed = Json::parse(&j.to_string()).unwrap();
        let mut back = UserRegs::new();
        for (i, w) in parsed
            .get("gpr")
            .unwrap()
            .items()
            .unwrap()
            .iter()
            .enumerate()
        {
            back.gpr[i] = w.as_u32().unwrap();
        }
        back.eip = parsed.get("eip").unwrap().as_u32().unwrap();
        back.eflags = parsed.get("eflags").unwrap().as_u32().unwrap();
        for (i, w) in parsed
            .get("pr")
            .unwrap()
            .items()
            .unwrap()
            .iter()
            .enumerate()
        {
            back.pr[i] = w.as_u32().unwrap();
        }
        assert_eq!(back, r);
    }
}

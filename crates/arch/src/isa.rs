//! The user-mode instruction set.
//!
//! A deliberately small, fully restartable ISA. Two design rules carry the
//! paper's argument through to the hardware level:
//!
//! 1. **Precise traps.** Any instruction that cannot complete (page fault,
//!    system call, halt) leaves `eip` pointing at itself; the kernel decides
//!    whether to advance it. Resuming a thread therefore re-executes the
//!    interrupted instruction.
//! 2. **In-place parameter advance.** The string instructions
//!    ([`Instr::RepMovsB`], [`Instr::RepStosB`]) keep their operands in
//!    registers (`esi`, `edi`, `ecx`) and advance them as bytes move, so an
//!    instruction interrupted in the middle resumes exactly where it left
//!    off — the hardware analogue of Fluke's multi-stage system calls
//!    (paper §4.2).

use crate::regs::Reg;

/// A branch condition, evaluated against the flags set by `Cmp`/`CmpI`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Branch always.
    Always,
    /// Branch if the last comparison was equal (`ZF`).
    Eq,
    /// Branch if the last comparison was not equal (`!ZF`).
    Ne,
    /// Branch if the last comparison was unsigned less-than (`LT`).
    Lt,
    /// Branch if the last comparison was unsigned greater-or-equal (`!LT`).
    Ge,
}

/// One user-mode instruction.
///
/// Branch targets are instruction indices; the [`crate::Assembler`] resolves
/// symbolic labels to these indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `dst <- imm`.
    MovI(Reg, u32),
    /// `dst <- src`.
    Mov(Reg, Reg),
    /// `dst <- dst + src` (wrapping).
    Add(Reg, Reg),
    /// `dst <- dst + imm` (wrapping).
    AddI(Reg, u32),
    /// `dst <- dst - src` (wrapping).
    Sub(Reg, Reg),
    /// `dst <- dst - imm` (wrapping).
    SubI(Reg, u32),
    /// `dst <- dst * src` (wrapping).
    Mul(Reg, Reg),
    /// `dst <- dst ^ src`; `Xor(r, r)` is the idiomatic zeroing form.
    Xor(Reg, Reg),
    /// `dst <- dst & imm`.
    AndI(Reg, u32),
    /// `dst <- dst >> imm` (logical).
    ShrI(Reg, u32),
    /// `dst <- dst << imm`.
    ShlI(Reg, u32),
    /// Compare `lhs` with `rhs`, setting `ZF`/`LT`.
    Cmp(Reg, Reg),
    /// Compare `lhs` with immediate `rhs`, setting `ZF`/`LT`.
    CmpI(Reg, u32),
    /// Conditional branch to an absolute instruction index.
    Jmp(Cond, u32),
    /// 32-bit load: `dst <- mem[base + off]`. May fault.
    Load(Reg, Reg, i32),
    /// 32-bit store: `mem[base + off] <- src`. May fault.
    Store(Reg, i32, Reg),
    /// 8-bit load (zero-extended): `dst <- mem[base + off]`. May fault.
    LoadB(Reg, Reg, i32),
    /// 8-bit store (low byte of `src`): `mem[base + off] <- src`. May fault.
    StoreB(Reg, i32, Reg),
    /// Push `src` on the user stack: `esp -= 4; mem[esp] <- src`. May fault.
    Push(Reg),
    /// Pop into `dst`: `dst <- mem[esp]; esp += 4`. May fault.
    Pop(Reg),
    /// Copy `ecx` bytes from `[esi]` to `[edi]`, advancing all three
    /// registers as it goes. Interruptible and restartable mid-copy: on a
    /// fault the registers hold the exact partial progress. May fault.
    RepMovsB,
    /// Store the low byte of `eax` to `ecx` bytes at `[edi]`, advancing
    /// `edi`/`ecx`. Same restartability as `RepMovsB`. May fault.
    RepStosB,
    /// Trap to the kernel; the entrypoint number is in `eax` and arguments
    /// follow the convention in `fluke-api`. `eip` is left pointing at this
    /// instruction so the kernel controls whether the call restarts
    /// (leave `eip`) or completes (advance `eip`).
    Syscall,
    /// Model `n` cycles of pure user-mode computation in one step.
    Compute(u32),
    /// Terminate the thread.
    Halt,
    /// Do nothing for one cycle.
    Nop,
}

impl Instr {
    /// Whether this instruction can touch user memory (and therefore fault).
    pub fn may_fault(&self) -> bool {
        matches!(
            self,
            Instr::Load(..)
                | Instr::Store(..)
                | Instr::LoadB(..)
                | Instr::StoreB(..)
                | Instr::Push(..)
                | Instr::Pop(..)
                | Instr::RepMovsB
                | Instr::RepStosB
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn may_fault_classification() {
        assert!(Instr::Load(Reg::Eax, Reg::Ebx, 0).may_fault());
        assert!(Instr::RepMovsB.may_fault());
        assert!(Instr::Push(Reg::Eax).may_fault());
        assert!(!Instr::MovI(Reg::Eax, 1).may_fault());
        assert!(!Instr::Syscall.may_fault());
        assert!(!Instr::Compute(100).may_fault());
    }
}

//! The CPU's view of memory: a checked, faultable access interface.
//!
//! The simulated CPU does not own memory; address translation and page-table
//! policy belong to the kernel (`fluke-core`). The CPU only needs a way to
//! issue loads and stores that may *fault*. A fault aborts the current
//! instruction with the program counter still pointing at it, exactly like a
//! precise page fault on real hardware, so resolving the fault and resuming
//! re-executes (or, for string instructions, *continues*) the instruction.

/// Whether a memory access was a read or a write.
///
/// The kernel uses this to check page protections and to decide whether a
/// copy-on-write style mapping can satisfy the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (also used for instruction operands read from memory).
    Read,
    /// A store.
    Write,
}

/// A memory access fault, reported with the faulting virtual address.
///
/// This is the hardware-level event; classification into *soft* and *hard*
/// faults (paper Table 3) is kernel policy and happens in `fluke-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The virtual address whose access faulted.
    pub addr: u32,
    /// Whether the faulting access was a read or a write.
    pub kind: AccessKind,
}

/// A fault raised partway through a bulk access.
///
/// Bulk operations are *not* atomic: like the x86 string instructions they
/// back, they complete a prefix of the transfer and then report how far they
/// got, so the caller can advance its cursors by exactly `done` bytes and
/// retry from the faulting address after the fault is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkFault {
    /// Bytes successfully transferred before the fault.
    pub done: u32,
    /// The fault that stopped the transfer.
    pub fault: MemFault,
}

/// The interface the CPU uses to touch a thread's address space.
///
/// Implemented by the kernel's per-space page-table machinery. All accesses
/// are byte-granularity at this boundary; multi-byte accessors have default
/// implementations that fault at the first inaccessible byte, which is what
/// makes partially-completed string operations restartable.
pub trait UserMem {
    /// Read one byte at `addr`.
    fn read_u8(&mut self, addr: u32) -> Result<u8, MemFault>;

    /// Write one byte at `addr`.
    fn write_u8(&mut self, addr: u32, val: u8) -> Result<(), MemFault>;

    /// Read `out.len()` bytes starting at `addr`.
    ///
    /// On fault, `out[..done]` holds the bytes read before the fault and the
    /// rest of `out` is unspecified. The default implementation reads byte by
    /// byte; implementations may translate once per page run but must report
    /// the same fault address and completed-count the byte-at-a-time loop
    /// would.
    fn read_bytes(&mut self, addr: u32, out: &mut [u8]) -> Result<(), BulkFault> {
        for (i, b) in out.iter_mut().enumerate() {
            match self.read_u8(addr.wrapping_add(i as u32)) {
                Ok(v) => *b = v,
                Err(fault) => {
                    return Err(BulkFault {
                        done: i as u32,
                        fault,
                    })
                }
            }
        }
        Ok(())
    }

    /// Write `data` starting at `addr`.
    ///
    /// On fault, the first `done` bytes have been committed to memory (partial
    /// progress is visible, exactly as with the byte-at-a-time loop).
    fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), BulkFault> {
        for (i, b) in data.iter().enumerate() {
            if let Err(fault) = self.write_u8(addr.wrapping_add(i as u32), *b) {
                return Err(BulkFault {
                    done: i as u32,
                    fault,
                });
            }
        }
        Ok(())
    }

    /// Read a little-endian u32 at `addr` (no alignment requirement).
    fn read_u32(&mut self, addr: u32) -> Result<u32, MemFault> {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32))?;
        }
        Ok(u32::from_le_bytes(bytes))
    }

    /// Write a little-endian u32 at `addr` (no alignment requirement).
    fn write_u32(&mut self, addr: u32, val: u32) -> Result<(), MemFault> {
        for (i, b) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b)?;
        }
        Ok(())
    }
}

/// A flat, never-faulting memory for unit tests and examples: every address
/// below its size is readable and writable.
#[derive(Debug, Clone)]
pub struct FlatMem {
    bytes: Vec<u8>,
}

impl FlatMem {
    /// Create a flat memory of `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        FlatMem {
            bytes: vec![0; size],
        }
    }

    /// Borrow the underlying bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl UserMem for FlatMem {
    fn read_u8(&mut self, addr: u32) -> Result<u8, MemFault> {
        self.bytes.get(addr as usize).copied().ok_or(MemFault {
            addr,
            kind: AccessKind::Read,
        })
    }

    fn write_u8(&mut self, addr: u32, val: u8) -> Result<(), MemFault> {
        match self.bytes.get_mut(addr as usize) {
            Some(b) => {
                *b = val;
                Ok(())
            }
            None => Err(MemFault {
                addr,
                kind: AccessKind::Write,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_mem_read_write() {
        let mut m = FlatMem::new(16);
        m.write_u8(3, 0xab).unwrap();
        assert_eq!(m.read_u8(3).unwrap(), 0xab);
        assert_eq!(m.read_u8(4).unwrap(), 0);
    }

    #[test]
    fn flat_mem_faults_out_of_range() {
        let mut m = FlatMem::new(4);
        let f = m.read_u8(4).unwrap_err();
        assert_eq!(f.addr, 4);
        assert_eq!(f.kind, AccessKind::Read);
        let f = m.write_u8(100, 1).unwrap_err();
        assert_eq!(f.kind, AccessKind::Write);
    }

    #[test]
    fn u32_roundtrip_little_endian() {
        let mut m = FlatMem::new(16);
        m.write_u32(5, 0xdead_beef).unwrap();
        assert_eq!(m.read_u32(5).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u8(5).unwrap(), 0xef);
        assert_eq!(m.read_u8(8).unwrap(), 0xde);
    }

    #[test]
    fn u32_faults_at_first_bad_byte() {
        let mut m = FlatMem::new(6);
        // Bytes 4..8: byte 6 is the first out of range.
        let f = m.write_u32(4, 1).unwrap_err();
        assert_eq!(f.addr, 6);
    }

    #[test]
    fn bulk_roundtrip() {
        let mut m = FlatMem::new(32);
        let data: Vec<u8> = (0..20).map(|i| i as u8 ^ 0x5a).collect();
        m.write_bytes(7, &data).unwrap();
        let mut out = [0u8; 20];
        m.read_bytes(7, &mut out).unwrap();
        assert_eq!(&out[..], &data[..]);
    }

    #[test]
    fn bulk_read_reports_done_and_fault() {
        let mut m = FlatMem::new(10);
        let mut out = [0xffu8; 8];
        let e = m.read_bytes(6, &mut out).unwrap_err();
        assert_eq!(e.done, 4);
        assert_eq!(e.fault.addr, 10);
        assert_eq!(e.fault.kind, AccessKind::Read);
        // The completed prefix is valid data.
        assert_eq!(&out[..4], &[0, 0, 0, 0]);
    }

    #[test]
    fn bulk_write_commits_prefix_before_fault() {
        let mut m = FlatMem::new(10);
        let e = m.write_bytes(8, &[1, 2, 3, 4]).unwrap_err();
        assert_eq!(e.done, 2);
        assert_eq!(e.fault.addr, 10);
        assert_eq!(e.fault.kind, AccessKind::Write);
        assert_eq!(m.read_u8(8).unwrap(), 1);
        assert_eq!(m.read_u8(9).unwrap(), 2);
    }

    #[test]
    fn bulk_empty_is_ok() {
        let mut m = FlatMem::new(1);
        m.read_bytes(0xffff_ffff, &mut []).unwrap();
        m.write_bytes(0xffff_ffff, &[]).unwrap();
    }
}

//! A small assembler with symbolic labels.
//!
//! Workload programs (`fluke-workloads`) and the user-mode runtime
//! (`fluke-user`) build their instruction streams through this type rather
//! than hand-computing branch targets.

use std::collections::HashMap;

use crate::isa::{Cond, Instr};
use crate::program::Program;
use crate::regs::Reg;

/// Builds a [`Program`], resolving label references to instruction indices.
///
/// # Examples
///
/// ```
/// use fluke_arch::{Assembler, Cond, Reg};
///
/// let mut a = Assembler::new("count");
/// a.movi(Reg::Ecx, 3);
/// a.label("loop");
/// a.subi(Reg::Ecx, 1);
/// a.cmpi(Reg::Ecx, 0);
/// a.jcc(Cond::Ne, "loop");
/// a.halt();
/// let prog = a.finish();
/// assert_eq!(prog.len(), 5);
/// ```
pub struct Assembler {
    name: String,
    instrs: Vec<Instr>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
}

impl Assembler {
    /// Start assembling a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Assembler {
            name: name.into(),
            instrs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// Define `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (a programming error in the
    /// workload being assembled).
    pub fn label(&mut self, label: &str) {
        let here = self.instrs.len() as u32;
        if self.labels.insert(label.to_string(), here).is_some() {
            panic!("assembler: duplicate label `{label}`");
        }
    }

    /// Current instruction index (useful for computed entry points).
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Conditional jump to `label` (resolved at [`Assembler::finish`]).
    pub fn jcc(&mut self, cond: Cond, label: &str) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.to_string()));
        self.instrs.push(Instr::Jmp(cond, u32::MAX));
        self
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.jcc(Cond::Always, label)
    }

    /// `dst <- imm`.
    pub fn movi(&mut self, dst: Reg, imm: u32) -> &mut Self {
        self.emit(Instr::MovI(dst, imm))
    }

    /// `dst <- src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Instr::Mov(dst, src))
    }

    /// `dst <- dst + src`.
    pub fn add(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Instr::Add(dst, src))
    }

    /// `dst <- dst + imm`.
    pub fn addi(&mut self, dst: Reg, imm: u32) -> &mut Self {
        self.emit(Instr::AddI(dst, imm))
    }

    /// `dst <- dst - src`.
    pub fn sub(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Instr::Sub(dst, src))
    }

    /// `dst <- dst - imm`.
    pub fn subi(&mut self, dst: Reg, imm: u32) -> &mut Self {
        self.emit(Instr::SubI(dst, imm))
    }

    /// `dst <- dst * src`.
    pub fn mul(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Instr::Mul(dst, src))
    }

    /// `dst <- dst ^ src` (use `xor(r, r)` to zero).
    pub fn xor(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Instr::Xor(dst, src))
    }

    /// Compare registers, setting flags.
    pub fn cmp(&mut self, lhs: Reg, rhs: Reg) -> &mut Self {
        self.emit(Instr::Cmp(lhs, rhs))
    }

    /// Compare register to immediate, setting flags.
    pub fn cmpi(&mut self, lhs: Reg, imm: u32) -> &mut Self {
        self.emit(Instr::CmpI(lhs, imm))
    }

    /// 32-bit load `dst <- mem[base+off]`.
    pub fn load(&mut self, dst: Reg, base: Reg, off: i32) -> &mut Self {
        self.emit(Instr::Load(dst, base, off))
    }

    /// 32-bit store `mem[base+off] <- src`.
    pub fn store(&mut self, base: Reg, off: i32, src: Reg) -> &mut Self {
        self.emit(Instr::Store(base, off, src))
    }

    /// 8-bit load.
    pub fn loadb(&mut self, dst: Reg, base: Reg, off: i32) -> &mut Self {
        self.emit(Instr::LoadB(dst, base, off))
    }

    /// 8-bit store.
    pub fn storeb(&mut self, base: Reg, off: i32, src: Reg) -> &mut Self {
        self.emit(Instr::StoreB(base, off, src))
    }

    /// Trap into the kernel (entrypoint number already in `eax`).
    pub fn syscall(&mut self) -> &mut Self {
        self.emit(Instr::Syscall)
    }

    /// Burn `n` cycles of simulated computation.
    pub fn compute(&mut self, n: u32) -> &mut Self {
        self.emit(Instr::Compute(n))
    }

    /// Terminate the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Resolve labels and produce the program.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never defined.
    pub fn finish(mut self) -> Program {
        for (at, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .unwrap_or_else(|| panic!("assembler: undefined label `{label}`"));
            match &mut self.instrs[*at] {
                Instr::Jmp(_, t) => *t = target,
                other => unreachable!("fixup at non-jump instruction {other:?}"),
            }
        }
        Program::new(self.name, self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new("t");
        a.jmp("end"); // forward reference
        a.label("mid");
        a.movi(Reg::Eax, 1);
        a.label("end");
        a.jcc(Cond::Always, "mid"); // backward reference
        a.halt();
        let p = a.finish();
        assert_eq!(p.fetch(0), Some(Instr::Jmp(Cond::Always, 2)));
        assert_eq!(p.fetch(2), Some(Instr::Jmp(Cond::Always, 1)));
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Assembler::new("t");
        a.jmp("nowhere");
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new("t");
        a.label("x");
        a.label("x");
    }

    #[test]
    fn builder_methods_emit_expected_instrs() {
        let mut a = Assembler::new("t");
        a.movi(Reg::Ebx, 5).addi(Reg::Ebx, 1).syscall().halt();
        let p = a.finish();
        assert_eq!(
            p.instrs(),
            &[
                Instr::MovI(Reg::Ebx, 5),
                Instr::AddI(Reg::Ebx, 1),
                Instr::Syscall,
                Instr::Halt
            ]
        );
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Assembler::new("t");
        assert_eq!(a.here(), 0);
        a.halt();
        assert_eq!(a.here(), 1);
    }
}

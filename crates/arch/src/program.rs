//! User-mode program text.
//!
//! Program text is immutable and shared: `eip` indexes into a [`Program`]'s
//! instruction vector. This stands in for the read-only text segment of a
//! real address space. For checkpoint and migration the text is identified
//! by a stable [`ProgramId`] registered with the kernel, playing the role of
//! the executable image a real checkpointer would re-map (see DESIGN.md,
//! substitutions).

use crate::isa::Instr;

/// Stable identity of a program image, used in exported thread state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u64);

/// An immutable user-mode program: a name plus its instruction vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
}

impl Program {
    /// Build a program from raw instructions (prefer [`crate::Assembler`]).
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        Program {
            name: name.into(),
            instrs,
        }
    }

    /// The program's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fetch the instruction at `eip`, or `None` past the end (an
    /// [`crate::Trap::Illegal`] condition).
    #[inline]
    pub fn fetch(&self, eip: u32) -> Option<Instr> {
        self.instrs.get(eip as usize).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The full instruction listing (for disassembly / debugging).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;
    use crate::regs::Reg;

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = Program::new("t", vec![Instr::Nop, Instr::Halt]);
        assert_eq!(p.fetch(0), Some(Instr::Nop));
        assert_eq!(p.fetch(1), Some(Instr::Halt));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn name_and_listing() {
        let p = Program::new("demo", vec![Instr::MovI(Reg::Eax, 1)]);
        assert_eq!(p.name(), "demo");
        assert_eq!(p.instrs().len(), 1);
    }
}

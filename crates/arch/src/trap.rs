//! Traps: the events that transfer control from user mode to the kernel.

use crate::mem::MemFault;

/// Why the CPU left user mode.
///
/// In every case `eip` still points at the instruction that trapped; the
/// kernel advances it only when the operation is complete, which is what
/// makes every trap site a clean restart point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// A `Syscall` instruction; the entrypoint number is in `eax`.
    Syscall,
    /// A load or store could not be translated or violated protections.
    PageFault(MemFault),
    /// The thread executed `Halt` and is done.
    Halt,
    /// The thread did something undefined (e.g. `eip` past the end of its
    /// program). Delivered to the kernel as a fatal exception.
    Illegal,
}

impl Trap {
    /// Short human-readable tag for logs and stats.
    pub fn name(&self) -> &'static str {
        match self {
            Trap::Syscall => "syscall",
            Trap::PageFault(_) => "pagefault",
            Trap::Halt => "halt",
            Trap::Illegal => "illegal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::AccessKind;

    #[test]
    fn trap_names() {
        assert_eq!(Trap::Syscall.name(), "syscall");
        assert_eq!(
            Trap::PageFault(MemFault {
                addr: 0,
                kind: AccessKind::Read
            })
            .name(),
            "pagefault"
        );
        assert_eq!(Trap::Halt.name(), "halt");
        assert_eq!(Trap::Illegal.name(), "illegal");
    }
}

#![warn(missing_docs)]
//! Simulated hardware substrate for the Fluke kernel reproduction.
//!
//! The paper's evaluation ran on a 200MHz Pentium Pro. This crate replaces
//! that testbed with a deterministic register machine whose surface mirrors
//! the properties the paper's argument depends on:
//!
//! * an x86-flavoured register file with few registers, forcing the kernel to
//!   provide *pseudo-registers* for intermediate IPC state (§4.4 of the paper);
//! * *restartable string instructions* ([`Instr::RepMovsB`], [`Instr::RepStosB`])
//!   whose parameter registers advance in place as they work, so an interrupted
//!   instruction resumes exactly where it left off — the paper's explicit
//!   analogy for the atomic system-call API (§4.2);
//! * precise traps: on a page fault or syscall the program counter points *at*
//!   the trapping instruction, so re-entering user mode re-executes it;
//! * a deterministic cycle-accurate [`cost::CostModel`] standing in for the
//!   Pentium Pro's timing, calibrated to the micro-costs the paper publishes.
//!
//! Everything in this crate is mechanism shared by kernel and user code; no
//! policy lives here.

pub mod asm;
pub mod cost;
pub mod cpu;
pub mod isa;
pub mod mem;
pub mod program;
pub mod regs;
pub mod trap;

pub use asm::Assembler;
pub use cost::{cycles_to_us, us_to_cycles, CostModel, Cycles, CYCLES_PER_US};
pub use cpu::{Cpu, StepOutcome};
pub use isa::{Cond, Instr};
pub use mem::{AccessKind, BulkFault, MemFault, UserMem};
pub use program::{Program, ProgramId};
pub use regs::{Reg, UserRegs, FLAG_LT, FLAG_ZF};
pub use trap::Trap;

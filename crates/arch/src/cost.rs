//! The deterministic cost model standing in for the paper's 200MHz Pentium
//! Pro testbed.
//!
//! Every constant that differentiates the execution models lives here, in one
//! place, so the experiment harness can point at exactly which assumption
//! produces which row of which table. Values are calibrated to the paper's
//! published micro-costs:
//!
//! * 200 cycles per microsecond (200MHz);
//! * ≈70 cycles minimal hardware cost of entering and leaving supervisor
//!   mode (paper §5.5);
//! * ≈6 extra cycles per kernel entry/exit in the interrupt model to move
//!   saved state between the per-CPU stack and the thread structure
//!   (paper §5.5, measured on a 100MHz Pentium);
//! * six 32-bit memory reads and writes of kernel-mode register state saved
//!   on every process-model context switch, which the interrupt model
//!   eliminates (paper §5.3);
//! * kernel copy bandwidth and fault-service costs calibrated so Table 3 and
//!   Table 6 land in the paper's ranges (see EXPERIMENTS.md).

/// Simulated cycles. 200 cycles = 1µs.
pub type Cycles = u64;

/// Simulated clock rate: cycles per microsecond (200MHz Pentium Pro).
pub const CYCLES_PER_US: u64 = 200;

/// Convert simulated cycles to microseconds (as f64, for reporting).
pub fn cycles_to_us(c: Cycles) -> f64 {
    c as f64 / CYCLES_PER_US as f64
}

/// Convert microseconds to simulated cycles.
pub fn us_to_cycles(us: u64) -> Cycles {
    us * CYCLES_PER_US
}

/// Convert milliseconds to simulated cycles.
pub fn ms_to_cycles(ms: u64) -> Cycles {
    ms * 1000 * CYCLES_PER_US
}

/// All tunable cycle costs of the simulated machine and kernel paths.
///
/// The defaults reproduce the paper's tables; tests and ablation benches
/// construct variants to isolate individual effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of one simple user instruction.
    pub user_instr: Cycles,
    /// Cost per byte moved by user-mode string instructions.
    pub user_string_byte_per: Cycles,
    /// Minimal hardware cost of entering supervisor mode (trap, stack
    /// switch, saving user state). Half of the paper's ~70-cycle round trip.
    pub hw_trap_enter: Cycles,
    /// Minimal hardware cost of returning to user mode.
    pub hw_trap_exit: Cycles,
    /// Software entry/exit bookkeeping common to both models (dispatch,
    /// argument fetch from the register save area).
    pub sw_entry_common: Cycles,
    /// Extra cycles per kernel entry in the interrupt model: copying the
    /// hardware-saved state from the per-CPU kernel stack into the thread
    /// structure (the x86 "architectural bias" of §5.5).
    pub interrupt_entry_extra: Cycles,
    /// Extra cycles per kernel exit in the interrupt model: copying state
    /// back from the thread structure to the per-CPU stack for `iret`.
    pub interrupt_exit_extra: Cycles,
    /// Base cost of a context switch (queue manipulation, switching page
    /// tables is charged separately).
    pub ctx_switch_base: Cycles,
    /// Extra context-switch cost in the process model: saving and restoring
    /// six 32-bit kernel-mode registers (six reads + six writes), which the
    /// interrupt model eliminates because blocked threads restart instead of
    /// resuming (paper §5.3, the flukeperf effect).
    pub ctx_switch_kernel_regs: Cycles,
    /// Cost of switching address spaces (TLB flush) when the next thread is
    /// in a different space.
    pub addr_space_switch: Cycles,
    /// Kernel copy bandwidth: cycles per byte on the IPC copy path.
    pub copy_byte_per: Cycles,
    /// Fixed per-transfer IPC setup cost (connection handshake, window
    /// negotiation).
    pub ipc_setup: Cycles,
    /// Acquire cost of a blocking kernel mutex (full-preemption
    /// configuration only; NP/PP uniprocessor kernels need no locking —
    /// paper Table 4).
    pub klock_acquire: Cycles,
    /// Release cost of a blocking kernel mutex.
    pub klock_release: Cycles,
    /// Uncontended acquire cost of one fine-grained multiprocessor
    /// object-class lock (an atomic read-modify-write on a shared line).
    /// Charged only when `num_cpus > 1`; contention waits are charged
    /// separately by the simulated lock table.
    pub mp_lock_acquire: Cycles,
    /// Release cost of a fine-grained multiprocessor lock (a store plus
    /// fence).
    pub mp_lock_release: Cycles,
    /// Cost on the initiating CPU of sending one cross-CPU TLB-shootdown
    /// IPI (per remote processor with the mutated space loaded).
    pub tlb_shootdown_ipi: Cycles,
    /// Cost on each remote CPU of taking the shootdown IPI and
    /// invalidating its TLB.
    pub tlb_shootdown_ack: Cycles,
    /// Cost of the scheduler core: pick next thread, dequeue, dispatch.
    pub schedule_op: Cycles,
    /// Kernel work to resolve a *soft* page fault: walk the memory mapping
    /// hierarchy and derive a page-table entry from an entry higher up
    /// (paper Table 3: ~19µs client side).
    pub soft_fault_resolve: Cycles,
    /// Extra kernel work when the fault was raised on the server side of an
    /// in-progress IPC (re-validating the connection around the fault;
    /// Table 3 shows server-side faults cost ~10µs more to remedy).
    pub server_fault_extra: Cycles,
    /// Kernel-side overhead of converting a hard fault into an exception
    /// IPC to the user-mode pager and processing its reply (the pager's own
    /// user-mode service time is charged by its instructions).
    pub hard_fault_kernel: Cycles,
    /// Cost of creating a kernel object (allocation + table insertion).
    pub object_create: Cycles,
    /// Cost of destroying a kernel object.
    pub object_destroy: Cycles,
    /// Cost of a generic short object operation (reference, state move...).
    pub object_op: Cycles,
    /// Cost per page examined by `region_search` — the long, non-IPC kernel
    /// path that lacks preemption points and therefore bounds partial
    /// preemption latency (Table 6's PP max column).
    pub region_search_page: Cycles,
    /// Cost of an explicit preemption-point check on the IPC copy path.
    pub preempt_check: Cycles,
    /// Cost of delivering a timer interrupt (before any scheduling).
    pub timer_irq: Cycles,
    /// Default scheduling timeslice, in cycles (10ms).
    pub timeslice: Cycles,
}

impl CostModel {
    /// The calibrated default model (see crate docs and EXPERIMENTS.md).
    pub fn pentium_pro_200() -> Self {
        CostModel {
            user_instr: 2,
            user_string_byte_per: 1,
            hw_trap_enter: 35,
            hw_trap_exit: 35,
            sw_entry_common: 30,
            interrupt_entry_extra: 3,
            interrupt_exit_extra: 3,
            ctx_switch_base: 300,
            // Six 32-bit reads + six writes of kernel register state; on a
            // 200MHz Pentium Pro these touch cold TCB cache lines, so the
            // effective cost is far above one cycle per access. Calibrated
            // against Table 5's flukeperf column (interrupt model ≈ 0.94).
            ctx_switch_kernel_regs: 150,
            addr_space_switch: 90,
            copy_byte_per: 1,
            ipc_setup: 400,
            klock_acquire: 25,
            klock_release: 15,
            mp_lock_acquire: 20,
            mp_lock_release: 10,
            tlb_shootdown_ipi: 400,
            tlb_shootdown_ack: 200,
            schedule_op: 120,
            soft_fault_resolve: 3_780,
            server_fault_extra: 2_100,
            hard_fault_kernel: 9_000,
            object_create: 400,
            object_destroy: 300,
            object_op: 120,
            region_search_page: 800,
            preempt_check: 8,
            timer_irq: 100,
            timeslice: ms_to_cycles(10),
        }
    }

    /// Full syscall entry cost for the given execution model.
    pub fn entry_cost(&self, interrupt_model: bool) -> Cycles {
        let extra = if interrupt_model {
            self.interrupt_entry_extra
        } else {
            0
        };
        self.hw_trap_enter + self.sw_entry_common + extra
    }

    /// Full syscall exit cost for the given execution model.
    pub fn exit_cost(&self, interrupt_model: bool) -> Cycles {
        let extra = if interrupt_model {
            self.interrupt_exit_extra
        } else {
            0
        };
        self.hw_trap_exit + extra
    }

    /// Context-switch cost for the given execution model (not counting an
    /// address-space switch).
    pub fn ctx_switch_cost(&self, interrupt_model: bool) -> Cycles {
        let regs = if interrupt_model {
            0
        } else {
            self.ctx_switch_kernel_regs
        };
        self.ctx_switch_base + regs
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::pentium_pro_200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(us_to_cycles(1), 200);
        assert_eq!(ms_to_cycles(1), 200_000);
        assert!((cycles_to_us(300) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn interrupt_model_entry_exit_penalty_is_six_cycles() {
        // Paper §5.5: moving saved state between the per-CPU stack and the
        // thread structure costs about six cycles per trap round trip.
        let m = CostModel::default();
        let penalty =
            (m.entry_cost(true) + m.exit_cost(true)) - (m.entry_cost(false) + m.exit_cost(false));
        assert_eq!(penalty, 6);
    }

    #[test]
    fn interrupt_penalty_under_ten_percent_of_null_syscall() {
        // Paper §5.5 / §6: even for the fastest possible system call the
        // interrupt-model overhead is less than 10%.
        let m = CostModel::default();
        let process = m.entry_cost(false) + m.exit_cost(false);
        let interrupt = m.entry_cost(true) + m.exit_cost(true);
        let overhead = (interrupt - process) as f64 / process as f64;
        assert!(overhead < 0.10, "overhead was {overhead}");
    }

    #[test]
    fn process_model_context_switch_saves_kernel_regs() {
        // Paper §5.3: the interrupt model eliminates six 32-bit reads and
        // writes of kernel register state on every context switch.
        let m = CostModel::default();
        assert_eq!(
            m.ctx_switch_cost(false) - m.ctx_switch_cost(true),
            m.ctx_switch_kernel_regs
        );
    }

    #[test]
    fn hardware_trap_round_trip_near_seventy_cycles() {
        let m = CostModel::default();
        assert_eq!(m.hw_trap_enter + m.hw_trap_exit, 70);
    }
}

//! Regression pin: the checkpoint / restore / migrate user-level flows
//! report every failure as a structured [`CheckpointError`], never a
//! panic. Each test drives a failure mode that used to `assert!` or
//! `.expect()` inside the library and checks that the caller gets a
//! matching `Err` variant back instead.

use fluke_api::state::ThreadStateFrame;
use fluke_api::ObjType;
use fluke_arch::{ProgramId, UserRegs};
use fluke_core::{Config, Kernel, SpaceId};
use fluke_user::checkpoint::{checkpoint_space, restore_space, SyscallAgent};
use fluke_user::migrate::{migrate_space, rewrite_programs, ship_programs};
use fluke_user::{CheckpointError, CheckpointImage, ObjectRecord};

const CHILD_BASE: u32 = 0x0040_0000;
const CHILD_LEN: u32 = 0x4000;
const MGR_MEM: u32 = 0x0010_0000;

/// A manager + child pair WITHOUT the identity window, so every window
/// access the checkpoint flows attempt faults in the manager's space.
fn windowless_world(kernel: &mut Kernel) -> (SyscallAgent, SpaceId, u32) {
    let manager = kernel.create_space();
    kernel.grant_pages(manager, MGR_MEM, 0x2000, true);
    let child = kernel.create_space();
    kernel.grant_pages(child, CHILD_BASE, CHILD_LEN, true);
    let handle = MGR_MEM + 0x1800;
    kernel.loader_space_object(manager, handle, child);
    (SyscallAgent::new(kernel, manager, 20), child, handle)
}

fn thread_record(prog: u64) -> ObjectRecord {
    let f = ThreadStateFrame {
        regs: UserRegs::new(),
        program: ProgramId(prog),
        space_token: 0,
        priority: 8,
        runnable: 1,
        ipc_phase: 0,
    };
    ObjectRecord {
        vaddr: 0x1000,
        ty: ObjType::Thread,
        words: f.to_words().to_vec(),
    }
}

fn image_with(records: Vec<ObjectRecord>) -> CheckpointImage {
    CheckpointImage {
        mem_base: CHILD_BASE,
        memory: vec![0; 16],
        records,
    }
}

#[test]
fn checkpoint_without_window_is_a_structured_error() {
    let mut k = Kernel::new(Config::process_np());
    let (agent, _child, handle) = windowless_world(&mut k);
    let err = checkpoint_space(&mut k, &agent, handle, CHILD_BASE, CHILD_LEN, MGR_MEM)
        .expect_err("unmapped window must fail, not panic");
    assert!(
        matches!(err, CheckpointError::Mem(_)),
        "expected a window fault, got {err}"
    );
}

#[test]
fn restore_without_window_is_a_structured_error() {
    let mut k = Kernel::new(Config::process_np());
    let (agent, _child, handle) = windowless_world(&mut k);
    let err = restore_space(&mut k, &agent, &image_with(vec![]), handle, MGR_MEM)
        .expect_err("unmapped window must fail, not panic");
    assert!(
        matches!(err, CheckpointError::Mem(_)),
        "expected a window fault, got {err}"
    );
}

#[test]
fn ship_programs_flags_unregistered_program() {
    let src = Kernel::new(Config::process_np());
    let mut dst = Kernel::new(Config::process_np());
    let image = image_with(vec![thread_record(42)]);
    let err = ship_programs(&src, &mut dst, &image).expect_err("unknown program must fail");
    assert!(
        matches!(err, CheckpointError::UnknownProgram(ProgramId(42))),
        "expected UnknownProgram(42), got {err}"
    );
}

#[test]
fn corrupt_thread_frame_is_a_structured_error() {
    let mut image = image_with(vec![ObjectRecord {
        vaddr: 0x1000,
        ty: ObjType::Thread,
        words: vec![1, 2], // far too short to decode
    }]);
    let err = rewrite_programs(&mut image, &Default::default())
        .expect_err("truncated frame must fail, not panic");
    assert!(
        matches!(err, CheckpointError::BadFrame(ObjType::Thread)),
        "expected BadFrame(Thread), got {err}"
    );
}

#[test]
fn migrate_space_propagates_ship_errors() {
    let src = Kernel::new(Config::process_np());
    let mut dst = Kernel::new(Config::process_np());
    let (agent, _child, handle) = windowless_world(&mut dst);
    let err = migrate_space(
        &src,
        &mut dst,
        &agent,
        image_with(vec![thread_record(7)]),
        handle,
        MGR_MEM,
    )
    .expect_err("migration of an unshippable image must fail");
    assert!(
        matches!(err, CheckpointError::UnknownProgram(ProgramId(7))),
        "expected UnknownProgram(7), got {err}"
    );
}

#[test]
fn checkpoint_errors_render_for_operators() {
    // Display strings are part of the debugging contract: kfault_sweep
    // and the examples surface them verbatim.
    let e = CheckpointError::BadFrame(ObjType::Thread);
    assert!(e.to_string().contains("state frame"));
    let e = CheckpointError::UnknownProgram(ProgramId(9));
    assert!(e.to_string().contains('9'));
}

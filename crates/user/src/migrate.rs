//! Process migration between kernel instances.
//!
//! Migration is checkpoint + ship + restore: extract the complete state of
//! a space on the source machine (kernel instance), move the image — plus
//! the program texts it references — to the destination, and rebuild.
//! Per the paper (§4.1), the atomic API is what makes the extracted state
//! *correct*: a thread re-created from its frame "behaves
//! indistinguishably from the original."

use std::collections::HashMap;

use fluke_api::state::ThreadStateFrame;
use fluke_api::ObjType;
use fluke_arch::ProgramId;
use fluke_core::Kernel;

use crate::checkpoint::{restore_space, CheckpointError, CheckpointImage, SyscallAgent};

/// Rewrite the program ids inside an image's thread frames using `map`
/// (source-kernel id → destination-kernel id). A thread record whose
/// frame fails to decode is a structured error, not a panic.
pub fn rewrite_programs(
    image: &mut CheckpointImage,
    map: &HashMap<ProgramId, ProgramId>,
) -> Result<(), CheckpointError> {
    for rec in &mut image.records {
        if rec.ty == ObjType::Thread {
            let mut f = ThreadStateFrame::from_words(&rec.words)
                .map_err(|_| CheckpointError::BadFrame(ObjType::Thread))?;
            if let Some(new) = map.get(&f.program) {
                f.program = *new;
                rec.words = f.to_words().to_vec();
            }
        }
    }
    Ok(())
}

/// Ship the program texts referenced by `image` from `src` to `dst`,
/// returning the id translation map. An image whose thread frames name a
/// program `src` has not registered (or fail to decode) is a structured
/// error, not a panic.
pub fn ship_programs(
    src: &Kernel,
    dst: &mut Kernel,
    image: &CheckpointImage,
) -> Result<HashMap<ProgramId, ProgramId>, CheckpointError> {
    let mut map = HashMap::new();
    for rec in &image.records {
        if rec.ty == ObjType::Thread {
            let f = ThreadStateFrame::from_words(&rec.words)
                .map_err(|_| CheckpointError::BadFrame(ObjType::Thread))?;
            if f.program.0 == u64::MAX || map.contains_key(&f.program) {
                continue;
            }
            let text = src
                .program(f.program)
                .ok_or(CheckpointError::UnknownProgram(f.program))?;
            let new = dst.register_program((*text).clone());
            map.insert(f.program, new);
        }
    }
    Ok(map)
}

/// Migrate a checkpointed space into a destination kernel: ship program
/// texts, rewrite ids, and restore through the destination's manager
/// agent. The destination window must already be set up (memory granted
/// and identity-visible) exactly as for [`restore_space`].
pub fn migrate_space(
    src: &Kernel,
    dst: &mut Kernel,
    agent: &SyscallAgent,
    mut image: CheckpointImage,
    new_space_handle: u32,
    manager_mem: u32,
) -> Result<(), CheckpointError> {
    let map = ship_programs(src, dst, &image)?;
    rewrite_programs(&mut image, &map)?;
    restore_space(dst, agent, &image, new_space_handle, manager_mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::ObjectRecord;
    use fluke_arch::UserRegs;

    fn thread_record(prog: u64) -> ObjectRecord {
        let f = ThreadStateFrame {
            regs: UserRegs::new(),
            program: ProgramId(prog),
            space_token: 0,
            priority: 8,
            runnable: 1,
            ipc_phase: 0,
        };
        ObjectRecord {
            vaddr: 0x1000,
            ty: ObjType::Thread,
            words: f.to_words().to_vec(),
        }
    }

    #[test]
    fn rewrite_programs_updates_thread_frames() {
        let mut image = CheckpointImage {
            mem_base: 0,
            memory: vec![],
            records: vec![thread_record(3)],
        };
        let mut map = HashMap::new();
        map.insert(ProgramId(3), ProgramId(7));
        rewrite_programs(&mut image, &map).unwrap();
        let f = ThreadStateFrame::from_words(&image.records[0].words).unwrap();
        assert_eq!(f.program, ProgramId(7));
    }

    #[test]
    fn rewrite_ignores_unmapped_ids() {
        let mut image = CheckpointImage {
            mem_base: 0,
            memory: vec![],
            records: vec![thread_record(5)],
        };
        rewrite_programs(&mut image, &HashMap::new()).unwrap();
        let f = ThreadStateFrame::from_words(&image.records[0].words).unwrap();
        assert_eq!(f.program, ProgramId(5));
    }
}

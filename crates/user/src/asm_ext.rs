//! Assembler extensions: libfluke-style system-call emitters.
//!
//! Each method loads the entrypoint number and (immediate) arguments into
//! the ABI registers and traps. Arguments that are already in the right
//! registers can be skipped with the `*_regs` variants.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::Sys;
use fluke_arch::{Assembler, Reg};

/// Libfluke: system-call emitters for the [`Assembler`].
pub trait FlukeAsm {
    /// Trap to `sys` with whatever is already in the argument registers.
    fn sys(&mut self, sys: Sys) -> &mut Self;

    /// Trap to `sys` with `ebx` = `handle`.
    fn sys_h(&mut self, sys: Sys, handle: u32) -> &mut Self;

    /// Trap to `sys` with `ebx` = `handle`, `edx` = `val`.
    fn sys_hv(&mut self, sys: Sys, handle: u32, val: u32) -> &mut Self;

    /// `mutex_lock(handle)`.
    fn mutex_lock(&mut self, handle: u32) -> &mut Self;
    /// `mutex_unlock(handle)`.
    fn mutex_unlock(&mut self, handle: u32) -> &mut Self;
    /// `cond_wait(cond, mutex)`.
    fn cond_wait(&mut self, cond: u32, mutex: u32) -> &mut Self;
    /// `cond_signal(cond)`.
    fn cond_signal(&mut self, cond: u32) -> &mut Self;

    /// `ipc_client_connect_send(port_ref, buf, len)`.
    fn client_connect_send(&mut self, port_ref: u32, buf: u32, len: u32) -> &mut Self;
    /// `ipc_client_connect_send_over_receive(port_ref, sbuf, slen, rbuf, rlen)`.
    fn client_rpc(
        &mut self,
        port_ref: u32,
        sbuf: u32,
        slen: u32,
        rbuf: u32,
        rlen: u32,
    ) -> &mut Self;
    /// `ipc_client_disconnect()`.
    fn client_disconnect(&mut self) -> &mut Self;
    /// `ipc_server_wait_receive(pset, buf, window)`.
    fn server_wait_receive(&mut self, pset: u32, buf: u32, window: u32) -> &mut Self;
    /// `ipc_server_ack_send(buf, len)`.
    fn server_ack_send(&mut self, buf: u32, len: u32) -> &mut Self;
    /// `ipc_server_ack_send_wait_receive(pset, sbuf, slen, rbuf, rwindow)`.
    fn server_ack_send_wait_receive(
        &mut self,
        pset: u32,
        sbuf: u32,
        slen: u32,
        rbuf: u32,
        rwindow: u32,
    ) -> &mut Self;

    /// Store a little-endian u32 constant to memory via `edx` (clobbers
    /// `edx` and `ebp`).
    fn store_const(&mut self, addr: u32, val: u32) -> &mut Self;
}

impl FlukeAsm for Assembler {
    fn sys(&mut self, sys: Sys) -> &mut Self {
        self.movi(Reg::Eax, sys.num());
        self.syscall()
    }

    fn sys_h(&mut self, sys: Sys, handle: u32) -> &mut Self {
        self.movi(ARG_HANDLE, handle);
        self.sys(sys)
    }

    fn sys_hv(&mut self, sys: Sys, handle: u32, val: u32) -> &mut Self {
        self.movi(ARG_HANDLE, handle);
        self.movi(ARG_VAL, val);
        self.sys(sys)
    }

    fn mutex_lock(&mut self, handle: u32) -> &mut Self {
        self.sys_h(Sys::MutexLock, handle)
    }

    fn mutex_unlock(&mut self, handle: u32) -> &mut Self {
        self.sys_h(Sys::MutexUnlock, handle)
    }

    fn cond_wait(&mut self, cond: u32, mutex: u32) -> &mut Self {
        self.sys_hv(Sys::CondWait, cond, mutex)
    }

    fn cond_signal(&mut self, cond: u32) -> &mut Self {
        self.sys_h(Sys::CondSignal, cond)
    }

    fn client_connect_send(&mut self, port_ref: u32, buf: u32, len: u32) -> &mut Self {
        self.movi(ARG_HANDLE, port_ref);
        self.movi(ARG_SBUF, buf);
        self.movi(ARG_COUNT, len);
        self.sys(Sys::IpcClientConnectSend)
    }

    fn client_rpc(
        &mut self,
        port_ref: u32,
        sbuf: u32,
        slen: u32,
        rbuf: u32,
        rlen: u32,
    ) -> &mut Self {
        self.movi(ARG_HANDLE, port_ref);
        self.movi(ARG_SBUF, sbuf);
        self.movi(ARG_COUNT, slen);
        self.movi(ARG_RBUF, rbuf);
        self.movi(ARG_VAL, rlen);
        self.sys(Sys::IpcClientConnectSendOverReceive)
    }

    fn client_disconnect(&mut self) -> &mut Self {
        self.sys(Sys::IpcClientDisconnect)
    }

    fn server_wait_receive(&mut self, pset: u32, buf: u32, window: u32) -> &mut Self {
        self.movi(ARG_HANDLE, pset);
        self.movi(ARG_RBUF, buf);
        self.movi(ARG_COUNT, window);
        self.sys(Sys::IpcServerWaitReceive)
    }

    fn server_ack_send(&mut self, buf: u32, len: u32) -> &mut Self {
        self.movi(ARG_SBUF, buf);
        self.movi(ARG_COUNT, len);
        self.sys(Sys::IpcServerAckSend)
    }

    fn server_ack_send_wait_receive(
        &mut self,
        pset: u32,
        sbuf: u32,
        slen: u32,
        rbuf: u32,
        rwindow: u32,
    ) -> &mut Self {
        self.movi(ARG_HANDLE, pset);
        self.movi(ARG_SBUF, sbuf);
        self.movi(ARG_COUNT, slen);
        self.movi(ARG_RBUF, rbuf);
        self.movi(ARG_VAL, rwindow);
        self.sys(Sys::IpcServerAckSendWaitReceive)
    }

    fn store_const(&mut self, addr: u32, val: u32) -> &mut Self {
        self.movi(Reg::Ebp, addr);
        self.movi(Reg::Edx, val);
        self.store(Reg::Ebp, 0, Reg::Edx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluke_arch::Instr;

    #[test]
    fn sys_emits_movi_then_trap() {
        let mut a = Assembler::new("t");
        a.sys(Sys::SysNull);
        let p = a.finish();
        assert_eq!(
            p.instrs(),
            &[Instr::MovI(Reg::Eax, Sys::SysNull.num()), Instr::Syscall]
        );
    }

    #[test]
    fn rpc_loads_all_five_args() {
        let mut a = Assembler::new("t");
        a.client_rpc(0x100, 0x200, 64, 0x300, 128);
        let p = a.finish();
        // Five immediate loads plus eax plus the trap.
        assert_eq!(p.len(), 7);
        assert!(p.instrs().contains(&Instr::MovI(ARG_VAL, 128)));
        assert!(p.instrs().contains(&Instr::MovI(ARG_COUNT, 64)));
    }

    #[test]
    fn store_const_sequence() {
        let mut a = Assembler::new("t");
        a.store_const(0x4000, 7);
        let p = a.finish();
        assert_eq!(p.len(), 3);
    }
}

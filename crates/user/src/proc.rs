//! Process setup: the role a parent manager (or the boot loader) plays
//! when constructing children.
//!
//! Conventions used throughout the workloads and tests:
//!
//! * a process's private memory starts at [`MEM_BASE`];
//! * kernel objects live in the first page of that memory (the *object
//!   page*), allocated 32 bytes apart;
//! * a manager that wants to checkpoint a child maps the child's memory
//!   into its own space *at the same addresses* (an identity window), so
//!   handles enumerated from the child resolve identically in the manager.

use fluke_arch::cost::Cycles;
use fluke_arch::{Program, ProgramId, UserRegs};
use fluke_core::{Kernel, RunExit, SpaceId, ThreadId};

/// Default base of a process's private memory.
pub const MEM_BASE: u32 = 0x0010_0000;
/// Default size of a process's private memory.
pub const MEM_LEN: u32 = 0x0001_0000; // 64KB
/// Spacing between kernel objects on the object page.
pub const OBJ_STRIDE: u32 = 32;

/// A simple process: a space with directly granted (boot) memory.
#[derive(Debug, Clone, Copy)]
pub struct ChildProc {
    /// The process's space.
    pub space: SpaceId,
    /// Base of its private memory.
    pub mem_base: u32,
    /// Length of its private memory.
    pub mem_len: u32,
    /// Next free object slot on the object page.
    pub next_obj: u32,
}

impl ChildProc {
    /// Create a process with `MEM_LEN` bytes of directly granted memory.
    pub fn new(k: &mut Kernel) -> ChildProc {
        Self::with_mem(k, MEM_BASE, MEM_LEN)
    }

    /// Create a process with a specific memory window.
    pub fn with_mem(k: &mut Kernel, base: u32, len: u32) -> ChildProc {
        let space = k.create_space();
        k.grant_pages(space, base, len, true);
        ChildProc {
            space,
            mem_base: base,
            mem_len: len,
            next_obj: base,
        }
    }

    /// Reserve the next object slot (a handle address).
    pub fn alloc_obj(&mut self) -> u32 {
        let v = self.next_obj;
        self.next_obj += OBJ_STRIDE;
        v
    }

    /// Register `prog` and start a thread running it at priority `prio`.
    pub fn start(&self, k: &mut Kernel, prog: Program, prio: u32) -> ThreadId {
        let pid = k.register_program(prog);
        self.start_registered(k, pid, UserRegs::new(), prio)
    }

    /// Start a thread from an already registered program with given regs.
    pub fn start_registered(
        &self,
        k: &mut Kernel,
        prog: ProgramId,
        regs: UserRegs,
        prio: u32,
    ) -> ThreadId {
        k.spawn_thread(self.space, prog, regs, prio)
    }
}

/// Run the kernel until every thread in `threads` has halted (or the cycle
/// budget is exhausted). Service threads (pagers, servers) may legitimately
/// remain blocked — [`RunExit::Deadlock`] with all target threads halted is
/// success.
///
/// Returns `true` if all target threads halted.
pub fn run_to_halt(k: &mut Kernel, threads: &[ThreadId], budget: Cycles) -> bool {
    let deadline = k.now() + budget;
    // One bounded run suffices: the kernel returns only at the deadline or
    // when nothing can run anymore.
    let _exit: RunExit = k.run(Some(deadline));
    threads.iter().all(|&t| k.thread_halted(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm_ext::FlukeAsm;
    use fluke_api::Sys;
    use fluke_arch::Assembler;
    use fluke_core::Config;

    #[test]
    fn child_proc_runs_a_program() {
        let mut k = Kernel::new(Config::process_np());
        let mut p = ChildProc::new(&mut k);
        let h = p.alloc_obj();
        let mut a = Assembler::new("t");
        a.sys_h(Sys::MutexCreate, h);
        a.mutex_lock(h);
        a.mutex_unlock(h);
        a.halt();
        let t = p.start(&mut k, a.finish(), 8);
        assert!(run_to_halt(&mut k, &[t], 10_000_000));
        assert_eq!(
            k.thread_regs(t).get(fluke_arch::Reg::Eax),
            fluke_api::ErrorCode::Success as u32
        );
    }

    #[test]
    fn obj_slots_do_not_overlap() {
        let mut k = Kernel::new(Config::process_np());
        let mut p = ChildProc::new(&mut k);
        let a = p.alloc_obj();
        let b = p.alloc_obj();
        assert!(b >= a + OBJ_STRIDE);
    }
}

//! User-level checkpointing — the paper's flagship application of the
//! atomic API (§4.1, \[31\]).
//!
//! Because every kernel operation is interruptible and restartable, the
//! complete state of a process is: (a) its memory bytes, (b) the state
//! frames of the kernel objects living in that memory, and (c) for each
//! thread, its register frame — *nothing else*. A thread blocked deep in a
//! multi-stage IPC is captured as "registers about to call
//! `ipc_client_send_more`"; re-created and resumed, it re-issues the call
//! and continues where it left off.
//!
//! The checkpointer here is a *manager*: an unprivileged party that can
//! name the child's objects because it maps the child's memory into its
//! own space at the same addresses (an identity window; see
//! [`identity_window`]). Every interaction with the child goes through the
//! ordinary system-call API via a [`SyscallAgent`] — a manager thread the
//! host drives one call at a time, exactly like a debugger stub.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_SBUF, ARG_VAL};
use fluke_api::state::ThreadStateFrame;
use fluke_api::{ErrorCode, ObjStateFrame, ObjType, Sys};
use fluke_arch::{Assembler, Reg, UserRegs};
use fluke_core::{Kernel, MemAccessError, ObjId, RunExit, SpaceId};
use fluke_json::Json;

/// A structured checkpoint/restore/migrate failure. Everything a manager
/// can hit through the API surfaces here instead of panicking: window
/// faults, unexpected syscall results, and malformed state frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// A window or scratch access faulted (a manager setup bug).
    Mem(MemAccessError),
    /// A syscall the flow depends on returned an unexpected code.
    Syscall {
        /// The entrypoint that failed.
        sys: Sys,
        /// The code it returned.
        code: ErrorCode,
    },
    /// An object record's state frame failed to decode.
    BadFrame(ObjType),
    /// `region_search` reported an object of an unknown type.
    BadType(u32),
    /// A thread frame references a program id the source kernel has not
    /// registered (migration shipped an incomplete image).
    UnknownProgram(fluke_arch::ProgramId),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Mem(e) => write!(f, "checkpoint window fault: {e}"),
            CheckpointError::Syscall { sys, code } => {
                write!(f, "{} returned {code:?}", sys.name())
            }
            CheckpointError::BadFrame(ty) => write!(f, "malformed {ty} state frame"),
            CheckpointError::BadType(t) => write!(f, "unknown object type {t} in image"),
            CheckpointError::UnknownProgram(p) => {
                write!(f, "thread frame references unregistered program {}", p.0)
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<MemAccessError> for CheckpointError {
    fn from(e: MemAccessError) -> Self {
        CheckpointError::Mem(e)
    }
}

/// One checkpointed kernel object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRecord {
    /// The object's handle (virtual address) in the child.
    pub vaddr: u32,
    /// Its type.
    pub ty: ObjType,
    /// Its exported state frame, in wire (word) format.
    pub words: Vec<u32>,
}

impl ObjectRecord {
    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("vaddr", Json::from_u32(self.vaddr));
        j.set("ty", Json::from_u32(self.ty as u32));
        j.set(
            "words",
            Json::Arr(self.words.iter().map(|&w| Json::from_u32(w)).collect()),
        );
        j
    }

    /// Rebuild from a JSON value produced by [`ObjectRecord::to_json`].
    pub fn from_json(j: &Json) -> Option<ObjectRecord> {
        Some(ObjectRecord {
            vaddr: j.get("vaddr")?.as_u32()?,
            ty: ObjType::from_u32(j.get("ty")?.as_u32()?)?,
            words: j
                .get("words")?
                .items()?
                .iter()
                .map(|w| w.as_u32())
                .collect::<Option<Vec<u32>>>()?,
        })
    }
}

/// A complete checkpoint of a space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Base of the captured memory window.
    pub mem_base: u32,
    /// The captured memory bytes.
    pub memory: Vec<u8>,
    /// Kernel objects found in the window, in enumeration order.
    pub records: Vec<ObjectRecord>,
}

impl CheckpointImage {
    /// Serialize the image to a JSON string (the persistence wire format).
    pub fn to_json_string(&self) -> String {
        let mut j = Json::obj();
        j.set("mem_base", Json::from_u32(self.mem_base));
        j.set(
            "memory",
            Json::Arr(
                self.memory
                    .iter()
                    .map(|&b| Json::from_u32(b as u32))
                    .collect(),
            ),
        );
        j.set(
            "records",
            Json::Arr(self.records.iter().map(|r| r.to_json()).collect()),
        );
        j.to_string()
    }

    /// Rebuild an image from its JSON string form.
    pub fn from_json_str(text: &str) -> Result<CheckpointImage, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        let bad = || "malformed checkpoint image".to_string();
        let mem_base = j.get("mem_base").and_then(Json::as_u32).ok_or_else(bad)?;
        let memory = j
            .get("memory")
            .and_then(Json::items)
            .ok_or_else(bad)?
            .iter()
            .map(|b| b.as_u32().and_then(|v| u8::try_from(v).ok()))
            .collect::<Option<Vec<u8>>>()
            .ok_or_else(bad)?;
        let records = j
            .get("records")
            .and_then(Json::items)
            .ok_or_else(bad)?
            .iter()
            .map(ObjectRecord::from_json)
            .collect::<Option<Vec<ObjectRecord>>>()
            .ok_or_else(bad)?;
        Ok(CheckpointImage {
            mem_base,
            memory,
            records,
        })
    }
}

/// A manager thread driven one system call at a time.
///
/// Each call spawns a fresh two-instruction program (`syscall; halt`) with
/// the desired argument registers, runs the kernel until it halts, and
/// returns the final registers. The kernel side is byte-for-byte the same
/// code path an ordinary process takes.
pub struct SyscallAgent {
    /// The manager space the agent runs in.
    pub space: SpaceId,
    /// Scheduling priority (should outrank the workload).
    pub priority: u32,
    prog: fluke_arch::ProgramId,
}

impl SyscallAgent {
    /// Create an agent in `space`.
    pub fn new(k: &mut Kernel, space: SpaceId, priority: u32) -> SyscallAgent {
        let mut a = Assembler::new("agent");
        a.syscall();
        a.halt();
        let prog = k.register_program(a.finish());
        SyscallAgent {
            space,
            priority,
            prog,
        }
    }

    /// Issue one system call with the given argument registers; returns
    /// the registers at completion.
    ///
    /// # Panics
    ///
    /// Panics if the agent cannot complete within a generous cycle budget
    /// (which would mean the manager itself got wedged — a test failure).
    pub fn call(&self, k: &mut Kernel, sys: Sys, mut regs: UserRegs) -> UserRegs {
        regs.set(Reg::Eax, sys.num());
        regs.eip = 0;
        let t = k.spawn_thread(self.space, self.prog, regs, self.priority);
        // Run in short slices so control returns promptly once the agent
        // halts — the checkpointed workload should advance as little as
        // possible while the manager operates.
        let deadline = k.now() + 2_000_000_000;
        loop {
            let exit = k.run(Some((k.now() + 10_000).min(deadline)));
            if k.thread_halted(t) {
                break;
            }
            match exit {
                RunExit::TimeLimit if k.now() >= deadline => {
                    panic!("syscall agent wedged running {sys:?}")
                }
                RunExit::TimeLimit => {}
                RunExit::Deadlock => panic!("deadlock while agent ran {sys:?}"),
                RunExit::AllHalted => break,
            }
        }
        *k.thread_regs(t)
    }

    /// Issue a call and return `(result_code, final_regs)`.
    pub fn call_checked(&self, k: &mut Kernel, sys: Sys, regs: UserRegs) -> (ErrorCode, UserRegs) {
        let out = self.call(k, sys, regs);
        let code = ErrorCode::from_u32(out.get(Reg::Eax)).unwrap_or(ErrorCode::InvalidArg);
        (code, out)
    }
}

/// Map `[base, base+len)` of `child` into `manager` at the same addresses,
/// so the manager can name the child's objects by the child's own handles.
/// Returns the (region, mapping) objects implementing the window.
pub fn identity_window(
    k: &mut Kernel,
    manager: SpaceId,
    manager_scratch: u32,
    child: SpaceId,
    base: u32,
    len: u32,
) -> (ObjId, ObjId) {
    // The region object (exporting the child's window) and the mapping
    // object (importing it into the manager) both live in the manager's
    // scratch page.
    let mut slot = manager_scratch;
    while k.object_at(manager, slot).is_some() {
        slot += 32;
    }
    let region = k.loader_region_at(manager, slot, child, base, len, None);
    let mut mslot = slot + 32;
    while k.object_at(manager, mslot).is_some() {
        mslot += 32;
    }
    let mapping = k.loader_mapping(manager, mslot, manager, base, len, region, 0, true);
    (region, mapping)
}

/// The scratch buffer the agent uses for state frames (one page of the
/// manager's memory).
fn scratch_addr(mem_base: u32) -> u32 {
    mem_base + 0xF00
}

/// Checkpoint `[base, base+len)` of a child space through the API.
///
/// `space_handle` is the manager's handle for the child's Space object;
/// the window `[base, len)` must be identity-visible to the manager (see
/// [`identity_window`]). `manager_mem` is a scratch page of the manager.
/// Any failure — an unmapped byte in the window or scratch area, a
/// syscall refusal, a malformed frame — is reported as a structured
/// [`CheckpointError`], never a panic.
pub fn checkpoint_space(
    k: &mut Kernel,
    agent: &SyscallAgent,
    space_handle: u32,
    base: u32,
    len: u32,
    manager_mem: u32,
) -> Result<CheckpointImage, CheckpointError> {
    let scratch = scratch_addr(manager_mem);
    let mut records = Vec::new();
    let mut cursor = base;
    let limit = base.saturating_add(len);
    loop {
        // region_search(space, cursor, limit)
        let mut regs = UserRegs::new();
        regs.set(ARG_HANDLE, space_handle);
        regs.set(ARG_VAL, cursor);
        regs.set(ARG_COUNT, limit);
        let (code, out) = agent.call_checked(k, Sys::RegionSearch, regs);
        if code == ErrorCode::NotFound {
            break;
        }
        if code != ErrorCode::Success {
            return Err(CheckpointError::Syscall {
                sys: Sys::RegionSearch,
                code,
            });
        }
        let vaddr = out.get(fluke_api::abi::ARG_SBUF);
        let raw_ty = out.get(fluke_api::abi::ARG_RBUF);
        let ty = ObjType::from_u32(raw_ty).ok_or(CheckpointError::BadType(raw_ty))?;
        cursor = out.get(ARG_VAL);
        // <type>_get_state(vaddr, scratch, max_words)
        let nwords = ObjStateFrame::words_for(ty) as u32;
        let mut regs = UserRegs::new();
        regs.set(ARG_HANDLE, vaddr);
        regs.set(ARG_SBUF, scratch);
        regs.set(ARG_COUNT, nwords);
        let (code, _) = agent.call_checked(k, get_state_sys(ty), regs);
        if code != ErrorCode::Success {
            return Err(CheckpointError::Syscall {
                sys: get_state_sys(ty),
                code,
            });
        }
        let bytes = k.try_read_mem(agent.space, scratch, nwords * 4)?;
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        records.push(ObjectRecord { vaddr, ty, words });
    }
    // Memory snapshot through the identity window.
    let memory = k.try_read_mem(agent.space, base, len)?;
    Ok(CheckpointImage {
        mem_base: base,
        memory,
        records,
    })
}

/// Restore an image into a fresh child space whose window is already
/// identity-visible to the manager and writable.
///
/// `new_space_handle` is the manager's handle for the new Space object.
/// Object tokens inside frames (mapping→region, thread→space) are resolved
/// in the manager's naming; thread frames get their `space_token`
/// rewritten to `new_space_handle` so restored threads run in the new
/// space.
pub fn restore_space(
    k: &mut Kernel,
    agent: &SyscallAgent,
    image: &CheckpointImage,
    new_space_handle: u32,
    manager_mem: u32,
) -> Result<(), CheckpointError> {
    let scratch = scratch_addr(manager_mem);
    // Memory first: object creation requires writable mapped pages, and
    // the bytes do not disturb object state (objects key off physical
    // location, and these are fresh frames).
    k.try_write_mem(agent.space, image.mem_base, &image.memory)?;
    // Creation order: ports/psets/regions before mappings/refs; threads
    // last so everything they might immediately touch exists.
    let order = |ty: ObjType| match ty {
        ObjType::Portset => 0,
        ObjType::Port => 1,
        ObjType::Region => 2,
        ObjType::Mapping => 3,
        ObjType::Mutex | ObjType::Cond => 4,
        ObjType::Space => 5,
        ObjType::Reference => 6,
        ObjType::Thread => 7,
    };
    let mut recs: Vec<&ObjectRecord> = image.records.iter().collect();
    recs.sort_by_key(|r| (order(r.ty), r.vaddr));
    for rec in recs {
        // <type>_create(vaddr, ...) with type-specific arguments pulled
        // from the frame.
        let mut regs = UserRegs::new();
        regs.set(ARG_HANDLE, rec.vaddr);
        match rec.ty {
            ObjType::Region => {
                // frame: [base, size, keeper]
                regs.set(ARG_COUNT, rec.words[1]);
                regs.set(ARG_VAL, rec.words[0]);
                regs.set(ARG_SBUF, rec.words[2]);
            }
            ObjType::Mapping => {
                // frame: [base, size, region_token, offset]
                regs.set(ARG_COUNT, rec.words[1]);
                regs.set(ARG_VAL, rec.words[0]);
                regs.set(ARG_SBUF, rec.words[2]);
                regs.set(fluke_api::abi::ARG_RBUF, rec.words[3]);
            }
            _ => {}
        }
        let (code, _) = agent.call_checked(k, create_sys(rec.ty), regs);
        if code != ErrorCode::Success && code != ErrorCode::AlreadyExists {
            return Err(CheckpointError::Syscall {
                sys: create_sys(rec.ty),
                code,
            });
        }
        // <type>_set_state(vaddr, scratch, words)
        let mut words = rec.words.clone();
        if rec.ty == ObjType::Thread {
            let mut f = ThreadStateFrame::from_words(&words)
                .map_err(|_| CheckpointError::BadFrame(ObjType::Thread))?;
            f.space_token = new_space_handle;
            words = f.to_words().to_vec();
        }
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        k.try_write_mem(agent.space, scratch, &bytes)?;
        let mut regs = UserRegs::new();
        regs.set(ARG_HANDLE, rec.vaddr);
        regs.set(ARG_SBUF, scratch);
        regs.set(ARG_COUNT, words.len() as u32);
        let (code, _) = agent.call_checked(k, set_state_sys(rec.ty), regs);
        if code != ErrorCode::Success {
            return Err(CheckpointError::Syscall {
                sys: set_state_sys(rec.ty),
                code,
            });
        }
    }
    Ok(())
}

/// The `*_get_state` entrypoint for a type.
pub fn get_state_sys(ty: ObjType) -> Sys {
    match ty {
        ObjType::Mutex => Sys::MutexGetState,
        ObjType::Cond => Sys::CondGetState,
        ObjType::Mapping => Sys::MappingGetState,
        ObjType::Region => Sys::RegionGetState,
        ObjType::Port => Sys::PortGetState,
        ObjType::Portset => Sys::PsetGetState,
        ObjType::Space => Sys::SpaceGetState,
        ObjType::Thread => Sys::ThreadGetState,
        ObjType::Reference => Sys::RefGetState,
    }
}

/// The `*_set_state` entrypoint for a type.
pub fn set_state_sys(ty: ObjType) -> Sys {
    match ty {
        ObjType::Mutex => Sys::MutexSetState,
        ObjType::Cond => Sys::CondSetState,
        ObjType::Mapping => Sys::MappingSetState,
        ObjType::Region => Sys::RegionSetState,
        ObjType::Port => Sys::PortSetState,
        ObjType::Portset => Sys::PsetSetState,
        ObjType::Space => Sys::SpaceSetState,
        ObjType::Thread => Sys::ThreadSetState,
        ObjType::Reference => Sys::RefSetState,
    }
}

/// The `*_create` entrypoint for a type.
pub fn create_sys(ty: ObjType) -> Sys {
    match ty {
        ObjType::Mutex => Sys::MutexCreate,
        ObjType::Cond => Sys::CondCreate,
        ObjType::Mapping => Sys::MappingCreate,
        ObjType::Region => Sys::RegionCreate,
        ObjType::Port => Sys::PortCreate,
        ObjType::Portset => Sys::PsetCreate,
        ObjType::Space => Sys::SpaceCreate,
        ObjType::Thread => Sys::ThreadCreate,
        ObjType::Reference => Sys::RefCreate,
    }
}

/// The `*_destroy` entrypoint for a type.
pub fn destroy_sys(ty: ObjType) -> Sys {
    match ty {
        ObjType::Mutex => Sys::MutexDestroy,
        ObjType::Cond => Sys::CondDestroy,
        ObjType::Mapping => Sys::MappingDestroy,
        ObjType::Region => Sys::RegionDestroy,
        ObjType::Port => Sys::PortDestroy,
        ObjType::Portset => Sys::PsetDestroy,
        ObjType::Space => Sys::SpaceDestroy,
        ObjType::Thread => Sys::ThreadDestroy,
        ObjType::Reference => Sys::RefDestroy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_maps_cover_all_types() {
        for ty in ObjType::ALL {
            // Each map must return an entrypoint of the right family name.
            assert!(get_state_sys(ty).name().ends_with("_get_state"));
            assert!(set_state_sys(ty).name().ends_with("_set_state"));
            assert!(create_sys(ty).name().ends_with("_create"));
            assert!(destroy_sys(ty).name().ends_with("_destroy"));
        }
    }
}

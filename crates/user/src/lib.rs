#![warn(missing_docs)]
//! `fluke-user`: the user-mode runtime of the Fluke reproduction
//! ("libfluke").
//!
//! Everything in this crate runs **above** the kernel API:
//!
//! * [`asm_ext`] — assembler extensions emitting system-call sequences, so
//!   workload programs read like libfluke calls;
//! * [`proc`] — host-side helpers that play the role of the boot loader /
//!   parent manager: set up spaces, memory windows, and standard objects;
//! * [`pager`] — a user-level memory manager: an ordinary user program that
//!   serves page-fault exception IPC on a keeper port with
//!   `region_populate`;
//! * [`checkpoint`] — a user-level checkpointer built purely from
//!   `region_search` + `get_state`/`set_state`, demonstrating the paper's
//!   claim that an atomic API lets ordinary processes capture and rebuild
//!   the complete state of other processes;
//! * [`migrate`] — process migration between two kernel instances, built
//!   on the checkpoint image format.

pub mod asm_ext;
pub mod checkpoint;
pub mod migrate;
pub mod pager;
pub mod proc;

pub use asm_ext::FlukeAsm;
pub use checkpoint::{
    checkpoint_space, restore_space, CheckpointError, CheckpointImage, ObjectRecord,
};
pub use migrate::migrate_space;
pub use pager::PagerSetup;
pub use proc::ChildProc;
